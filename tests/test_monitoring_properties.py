"""Property-based tests (hypothesis) for the streaming monitor stack.

The exact-arithmetic properties run on small-integer data, where every
float64 sum, mean and distance in the mini-batch step is exact — so the
invariants can be asserted *bitwise*, not within a tolerance:

* a batch of points lying exactly on representable centroids moves
  nothing: zero shift, zero drift tables, zero inertia, on every replay;
* the mini-batch update is permutation-invariant within a batch;
* raising any engine tolerance can only shrink the set of
  ``(step, kind)`` alerts (threshold monotonicity).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MiniBatchKhatriRaoKMeans
from repro.monitoring import DriftEngine
from tests.test_monitoring_engine import make_stats

cards_strategy = st.lists(st.integers(2, 3), min_size=2, max_size=2).map(tuple)


def exact_model(cards, m, thetas_flat):
    """A fitted-state model whose protocentroids are small integers.

    ``_counts`` start at zero, so the first batch's learning rate is
    exactly 1.0 — together with integer data this keeps every update
    step exact in float64.
    """
    model = MiniBatchKhatriRaoKMeans(cards, random_state=0)
    model.dtype_ = np.dtype(np.float64)
    thetas, pos = [], 0
    for h in cards:
        block = np.array(thetas_flat[pos:pos + h * m], dtype=np.float64)
        thetas.append(block.reshape(h, m))
        pos += h * m
    model.protocentroids_ = thetas
    model._counts = [np.zeros(h) for h in cards]
    return model


def exact_batch(model, assignments):
    """Batch whose rows sit exactly on the assigned centroids."""
    cards = model.cardinalities
    set_idx = np.unravel_index(np.asarray(assignments), cards)
    return sum(
        theta[idx] for theta, idx in zip(model.protocentroids_, set_idx)
    )


@st.composite
def exact_scenario(draw):
    cards = draw(cards_strategy)
    m = draw(st.integers(1, 3))
    n_theta = sum(cards) * m
    thetas_flat = draw(st.lists(
        st.integers(-8, 8), min_size=n_theta, max_size=n_theta
    ))
    n_clusters = int(np.prod(cards))
    assignments = draw(st.lists(
        st.integers(0, n_clusters - 1), min_size=4, max_size=12
    ))
    return cards, m, thetas_flat, assignments


class TestZeroDriftOnExactBatches:
    @given(exact_scenario(), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_centroid_batches_move_nothing_on_every_replay(
        self, scenario, use_index
    ):
        cards, m, thetas_flat, assignments = scenario
        model = exact_model(cards, m, thetas_flat)
        batch = exact_batch(model, assignments)
        before = [theta.copy() for theta in model.protocentroids_]
        index = (
            np.arange(batch.shape[0], dtype=np.int64) if use_index else None
        )
        for _ in range(3):  # replaying the identical batch stays a no-op
            model.partial_fit(batch, index=index)
            stats = model.last_batch_stats_
            assert stats.inertia == 0.0
            assert stats.shift == 0.0
            assert stats.max_drift == 0.0
            assert all(np.all(table == 0.0) for table in stats.drift_norms)
        for theta, orig in zip(model.protocentroids_, before):
            assert theta.tobytes() == orig.tobytes()


class TestPermutationInvariance:
    @given(exact_scenario(), st.integers(0, 2 ** 31 - 1), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_batch_row_order_is_irrelevant(self, scenario, perm_seed,
                                           use_index):
        cards, m, thetas_flat, assignments = scenario
        # Perturb the batch off the centroids (still integers, still
        # exact) so the update actually moves the protocentroids.
        noise = np.arange(len(assignments))[:, None] % 3 - 1
        perm = np.random.default_rng(perm_seed).permutation(len(assignments))

        results = []
        for order in (np.arange(len(assignments)), perm):
            model = exact_model(cards, m, thetas_flat)
            batch = (exact_batch(model, assignments) + noise)[order]
            index = order.astype(np.int64) if use_index else None
            model.partial_fit(batch, index=index)
            results.append((model, model.last_batch_stats_, order))

        (model_a, stats_a, order_a), (model_b, stats_b, order_b) = results
        for theta_a, theta_b in zip(
            model_a.protocentroids_, model_b.protocentroids_
        ):
            assert theta_a.tobytes() == theta_b.tobytes()
        assert stats_a.inertia == stats_b.inertia
        assert stats_a.shift == stats_b.shift
        assert stats_a.reassignment_fraction == stats_b.reassignment_fraction
        # Per-point labels match once both are put back in pool order.
        labels_a = np.empty(len(order_a), dtype=np.int64)
        labels_a[order_a] = stats_a.labels
        labels_b = np.empty(len(order_b), dtype=np.int64)
        labels_b[order_b] = stats_b.labels
        assert np.array_equal(labels_a, labels_b)


stats_sequence = st.lists(
    st.tuples(
        st.floats(0.0, 100.0, allow_nan=False),   # mean_inertia
        st.floats(0.0, 1.0, allow_nan=False),     # reassignment fraction
        st.floats(0.0, 10.0, allow_nan=False),    # drift
    ),
    min_size=3, max_size=20,
)


def alert_keys(tolerances, sequence):
    engine = DriftEngine(warmup_steps=1, **tolerances)
    keys = set()
    for step, (inertia, fraction, drift) in enumerate(sequence, start=1):
        for alert in engine.observe(make_stats(
            step=step, mean_inertia=inertia, fraction=fraction, drift=drift
        )):
            keys.add((alert.step, alert.kind))
    return keys


class TestMonotoneThresholds:
    @given(
        stats_sequence,
        st.floats(0.0, 2.0, allow_nan=False), st.floats(0.0, 2.0),
        st.floats(0.0, 2.0, allow_nan=False), st.floats(0.0, 2.0),
        st.floats(0.1, 1.0, allow_nan=False), st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_raising_any_tolerance_only_removes_alerts(
        self, sequence, itol, d_itol, dtol, d_dtol, rthr, d_rthr
    ):
        strict = {"inertia_tolerance": itol, "drift_tolerance": dtol,
                  "reassignment_threshold": rthr}
        loose = {"inertia_tolerance": itol + d_itol,
                 "drift_tolerance": dtol + d_dtol,
                 "reassignment_threshold": rthr + d_rthr}
        assert alert_keys(loose, sequence) <= alert_keys(strict, sequence)
