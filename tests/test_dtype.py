"""Certification of the dtype-aware kernel stack (the ``dtype`` knob).

Three guarantees are pinned here, stated precisely in ``docs/numerics.md``:

1. **float64 bit-identity.**  ``dtype="float64"`` (the default) reproduces
   the pre-dtype-refactor arithmetic bit for bit: seed-expectation cases
   pin exact inertias and SHA-256 digests of the fitted parameters, so any
   silent golden drift from the refactor fails loudly.

2. **float32 equivalence envelope.**  A ``dtype="float32"`` fit on
   well-separated data follows the float64 trajectory: identical labels,
   inertia within the *computable* expansion-form error envelope
   ``8·(m+8)·eps32 · Σ_i (‖x_i‖² + d_i)``, protocentroids within an
   ``O(eps32)`` per-coordinate envelope.

3. **Same-dtype pruning identity.**  ``pruning="bounds"`` at float32 is
   label/inertia/iteration-identical to the unpruned float32 run — the
   certified margins widen by ``eps32/eps64`` and keep absorbing the
   kernels' cancellation noise, including on un-centered data.

Plus the capability protocol: aggregators declare ``working_dtypes`` and
the resolver falls back to float64 loudly (``DtypeFallbackWarning``).
"""

import hashlib
import warnings

import numpy as np
import pytest

from repro import (
    DataSummary,
    KhatriRaoKMeans,
    KMeans,
    MiniBatchKhatriRaoKMeans,
    summarize,
)
from repro.core import assign_factored, grouped_row_sum, update_factored, update_gather
from repro.core._distances import assign_to_nearest
from repro.exceptions import DtypeFallbackWarning, ValidationError
from repro.federated import KhatriRaoFederatedKMeans, communication_cost_bytes
from repro.linalg import (
    SumAggregator,
    get_aggregator,
    khatri_rao_combine,
    resolve_working_dtype,
)
from repro._validation import check_dtype

EPS32 = float(np.finfo(np.float32).eps)


def _digest(arrays):
    dig = hashlib.sha256()
    for a in arrays:
        dig.update(np.ascontiguousarray(a).tobytes())
    return dig.hexdigest()[:16]


def _kr_data(n=400, m=12, cardinalities=(3, 4), seed=7, scale=6.0, noise=0.15):
    """Well-separated KR-structured blobs: the float32 and float64 argmin
    agree everywhere because inter-centroid gaps dwarf the O(eps32·‖x‖²)
    distance noise, so the two trajectories stay label-identical."""
    rng = np.random.default_rng(seed)
    thetas = [rng.normal(scale=scale, size=(h, m)) for h in cardinalities]
    flat = rng.integers(int(np.prod(cardinalities)), size=n)
    tuple_indices = np.unravel_index(flat, cardinalities)
    centers = sum(t[i] for t, i in zip(thetas, tuple_indices))
    return centers + rng.normal(scale=noise, size=(n, m))


def _inertia_envelope(X, distances):
    """The documented expansion-form envelope: Σ_i 8·(m+8)·eps32·(‖x_i‖²+d_i)."""
    m = X.shape[1]
    norms = np.einsum("ij,ij->i", X, X)
    return 8.0 * (m + 8) * EPS32 * float(np.sum(norms + distances))


class FloatOnlySum(SumAggregator):
    """A sum aggregator that never opted into float32 (capability test)."""

    working_dtypes = (np.dtype(np.float64),)


# --------------------------------------------------------------- validation
class TestDtypeValidation:
    def test_check_dtype_accepts_aliases(self):
        assert check_dtype("float32") == np.dtype(np.float32)
        assert check_dtype(np.float64) == np.dtype(np.float64)
        assert check_dtype(np.dtype("f4")) == np.dtype(np.float32)

    @pytest.mark.parametrize("bad", ["float16", np.int32, "complex128", object])
    def test_check_dtype_rejects_non_working_dtypes(self, bad):
        with pytest.raises(ValidationError):
            check_dtype(bad)

    def test_estimators_reject_bad_dtype_at_init(self):
        with pytest.raises(ValidationError):
            KhatriRaoKMeans((2, 2), dtype="int64")
        with pytest.raises(ValidationError):
            KMeans(3, dtype="float16")
        with pytest.raises(ValidationError):
            MiniBatchKhatriRaoKMeans((2, 2), dtype="c16")

    def test_builtin_aggregators_advertise_float32(self):
        for name in ("sum", "product"):
            assert np.dtype(np.float32) in get_aggregator(name).working_dtypes
        for name in ("sum", "product"):
            assert resolve_working_dtype("float32", name) == np.dtype(np.float32)

    def test_resolver_falls_back_loudly(self):
        with pytest.warns(DtypeFallbackWarning, match="float32"):
            resolved = resolve_working_dtype("float32", FloatOnlySum())
        assert resolved == np.dtype(np.float64)

    def test_estimator_fallback_fits_in_float64(self):
        X = _kr_data(n=120)
        model = KhatriRaoKMeans(
            (3, 4), aggregator=FloatOnlySum(), n_init=1, random_state=0,
            dtype="float32",
        )
        with pytest.warns(DtypeFallbackWarning):
            model.fit(X)
        assert model.dtype_ == np.dtype(np.float64)
        assert all(t.dtype == np.float64 for t in model.protocentroids_)


# ------------------------------------------------------- float64 bit-identity
class TestFloat64SeedGoldens:
    """The dtype refactor must not move the float64 default by one ulp.

    Exact inertias and parameter digests captured from the pre-refactor
    tree (PR 4 state) on a fixed dataset; ``dtype="float64"`` — implicit
    and explicit — must keep reproducing them bit for bit.
    """

    @pytest.fixture(scope="class")
    def data(self):
        return _kr_data()

    def test_khatri_rao_kmeans_golden(self, data):
        model = KhatriRaoKMeans((3, 4), n_init=2, random_state=0).fit(data)
        assert model.inertia_ == 23547.092034432088
        assert _digest(model.protocentroids_) == "2052198b72a2fe61"
        assert model.n_iter_ == 9
        assert model.dtype_ == np.dtype(np.float64)

    def test_explicit_float64_matches_default(self, data):
        default = KhatriRaoKMeans((3, 4), n_init=2, random_state=0).fit(data)
        explicit = KhatriRaoKMeans(
            (3, 4), n_init=2, random_state=0, dtype="float64"
        ).fit(data)
        assert default.inertia_ == explicit.inertia_
        assert _digest(default.protocentroids_) == _digest(explicit.protocentroids_)

    def test_kmeans_golden(self, data):
        model = KMeans(4, n_init=2, random_state=0).fit(data[:, :5])
        assert model.inertia_ == 22289.48951026015
        assert _digest([model.cluster_centers_]) == "4498e72e04e846e3"

    def test_minibatch_golden(self, data):
        model = MiniBatchKhatriRaoKMeans(
            (3, 4), batch_size=64, max_steps=30, random_state=0
        ).fit(data)
        assert model.inertia_ == 37957.92867257202
        assert _digest(model.protocentroids_) == "4b5df7ad0c3426a6"

    def test_federated_golden(self, data):
        shards = [(data[i::3], None) for i in range(3)]
        model = KhatriRaoFederatedKMeans(
            (3, 4), aggregator="sum", n_rounds=3, random_state=0
        ).fit(shards)
        assert model.history_.inertia[-1] == 38725.20279966493
        assert _digest(model.protocentroids_) == "540af847b324e7b2"

    def test_weighted_golden(self, data):
        w = _weighted_golden_weights()
        model = KhatriRaoKMeans((3, 4), n_init=1, random_state=1).fit(
            data, sample_weight=w
        )
        assert model.inertia_ == 53565.64402229072
        assert _digest(model.protocentroids_) == "4fa5cc43a8f5d8d3"

    def test_product_aggregator_golden(self, data):
        model = KhatriRaoKMeans(
            (2, 2), aggregator="product", n_init=1, random_state=2
        ).fit(np.abs(data) + 0.5)
        assert model.inertia_ == 57266.9179543592
        assert _digest(model.protocentroids_) == "0a28ce41c2ee4160"


def _weighted_golden_weights():
    """The exact rng stream the weighted golden was captured with."""
    rng = np.random.default_rng(7)
    for h in (3, 4):
        rng.normal(scale=6.0, size=(h, 12))
    rng.integers(12, size=400)
    rng.normal(scale=0.15, size=(400, 12))
    return rng.uniform(0.5, 2.0, size=400)


# -------------------------------------------------- float32 fit equivalence
class TestFloat32Equivalence:
    @pytest.fixture(scope="class")
    def data(self):
        return _kr_data()

    @pytest.fixture(scope="class")
    def pair(self, data):
        kw = dict(n_init=2, random_state=0)
        f64 = KhatriRaoKMeans((3, 4), **kw).fit(data)
        f32 = KhatriRaoKMeans((3, 4), dtype="float32", **kw).fit(data)
        return f64, f32

    def test_working_dtype_propagates(self, pair):
        _, f32 = pair
        assert f32.dtype_ == np.dtype(np.float32)
        assert all(t.dtype == np.float32 for t in f32.protocentroids_)
        assert f32.centroids().dtype == np.float32

    def test_labels_identical_on_separated_data(self, pair):
        f64, f32 = pair
        np.testing.assert_array_equal(f32.labels_, f64.labels_)
        assert f32.n_iter_ == f64.n_iter_

    def test_inertia_within_documented_envelope(self, pair, data):
        f64, f32 = pair
        _, d64 = assign_to_nearest(data, f64.centroids().astype(np.float64))
        envelope = _inertia_envelope(data, d64)
        assert abs(f32.inertia_ - f64.inertia_) <= envelope

    def test_protocentroids_within_envelope(self, pair, data):
        f64, f32 = pair
        # Per-coordinate O(eps32) envelope: one store rounding per update
        # times the iteration count, scaled by the data magnitude.
        atol = 64.0 * EPS32 * (np.abs(data).max() + 1.0) * max(f64.n_iter_, 1)
        for a, b in zip(f32.protocentroids_, f64.protocentroids_):
            np.testing.assert_allclose(a, b.astype(np.float32), atol=atol)

    @pytest.mark.parametrize("assignment", ["factored", "materialized"])
    @pytest.mark.parametrize("update", ["factored", "gather"])
    def test_kernel_grid_agrees_at_float32(self, data, assignment, update):
        kw = dict(n_init=1, random_state=5, assignment=assignment, update=update)
        f64 = KhatriRaoKMeans((3, 4), **kw).fit(data)
        f32 = KhatriRaoKMeans((3, 4), dtype="float32", **kw).fit(data)
        np.testing.assert_array_equal(f32.labels_, f64.labels_)
        _, d64 = assign_to_nearest(data, f64.centroids())
        assert abs(f32.inertia_ - f64.inertia_) <= _inertia_envelope(data, d64)

    def test_memory_mode_float32(self, data):
        kw = dict(n_init=1, random_state=4, mode="memory", chunk_size=5)
        f64 = KhatriRaoKMeans((3, 4), **kw).fit(data)
        f32 = KhatriRaoKMeans((3, 4), dtype="float32", **kw).fit(data)
        np.testing.assert_array_equal(f32.labels_, f64.labels_)

    def test_product_aggregator_float32(self, data):
        Xp = np.abs(data) + 0.5
        kw = dict(aggregator="product", n_init=1, random_state=2)
        f64 = KhatriRaoKMeans((2, 2), **kw).fit(Xp)
        f32 = KhatriRaoKMeans((2, 2), dtype="float32", **kw).fit(Xp)
        assert f32.dtype_ == np.dtype(np.float32)
        np.testing.assert_array_equal(f32.labels_, f64.labels_)

    def test_sample_weight_stays_in_dtype(self, data):
        w = _weighted_golden_weights()
        f64 = KhatriRaoKMeans((3, 4), n_init=1, random_state=1).fit(
            data, sample_weight=w
        )
        f32 = KhatriRaoKMeans(
            (3, 4), n_init=1, random_state=1, dtype="float32"
        ).fit(data, sample_weight=w)
        np.testing.assert_array_equal(f32.labels_, f64.labels_)

    def test_predict_casts_to_fit_dtype(self, pair, data):
        f64, f32 = pair
        np.testing.assert_array_equal(f32.predict(data), f64.predict(data))

    def test_kmeans_float32(self, data):
        X = data[:, :5]
        f64 = KMeans(4, n_init=2, random_state=0).fit(X)
        f32 = KMeans(4, n_init=2, random_state=0, dtype="float32").fit(X)
        assert f32.cluster_centers_.dtype == np.float32
        assert f32.dtype_ == np.dtype(np.float32)
        np.testing.assert_array_equal(f32.labels_, f64.labels_)
        _, d64 = assign_to_nearest(X, f64.cluster_centers_)
        assert abs(f32.inertia_ - f64.inertia_) <= _inertia_envelope(X, d64)

    def test_minibatch_float32(self, data):
        kw = dict(batch_size=64, max_steps=30, random_state=0)
        f64 = MiniBatchKhatriRaoKMeans((3, 4), **kw).fit(data)
        f32 = MiniBatchKhatriRaoKMeans((3, 4), dtype="float32", **kw).fit(data)
        assert f32.dtype_ == np.dtype(np.float32)
        assert all(t.dtype == np.float32 for t in f32.protocentroids_)
        np.testing.assert_array_equal(f32.labels_, f64.labels_)

    def test_minibatch_partial_fit_float32(self, data):
        model = MiniBatchKhatriRaoKMeans((3, 4), random_state=0, dtype="float32")
        model.partial_fit(data[:128]).partial_fit(data[128:256])
        assert model.dtype_ == np.dtype(np.float32)
        assert all(t.dtype == np.float32 for t in model.protocentroids_)
        assert model.predict(data[:16]).shape == (16,)


# ------------------------------------------------ same-dtype pruning identity
class TestFloat32PruningIdentity:
    """``pruning="bounds"`` must stay exactly equivalent per dtype."""

    @pytest.mark.parametrize("assignment", ["factored", "materialized"])
    def test_batch_pruning_identity_float32(self, assignment):
        X = _kr_data(n=300, cardinalities=(4, 4), seed=11)
        kw = dict(
            n_init=1, max_iter=40, tol=0.0, random_state=0,
            assignment=assignment, dtype="float32",
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            pruned = KhatriRaoKMeans((4, 4), pruning="bounds", **kw).fit(X)
            plain = KhatriRaoKMeans((4, 4), pruning="none", **kw).fit(X)
        np.testing.assert_array_equal(pruned.labels_, plain.labels_)
        assert pruned.inertia_ == plain.inertia_
        assert pruned.n_iter_ == plain.n_iter_
        for a, b in zip(pruned.protocentroids_, plain.protocentroids_):
            np.testing.assert_array_equal(a, b)

    def test_pruning_identity_uncentered_float32(self):
        # A coordinate offset inflates ‖x‖² and with it the cancellation
        # error of the expansion-form kernels; the widened eps32 margins
        # must keep absorbing it (degrading pruning, never correctness).
        X = _kr_data(n=250, cardinalities=(3, 3), seed=13) + 1e3
        kw = dict(n_init=1, max_iter=30, random_state=1, dtype="float32")
        pruned = KhatriRaoKMeans((3, 3), pruning="bounds", **kw).fit(X)
        plain = KhatriRaoKMeans((3, 3), pruning="none", **kw).fit(X)
        np.testing.assert_array_equal(pruned.labels_, plain.labels_)
        assert pruned.inertia_ == plain.inertia_
        assert pruned.n_iter_ == plain.n_iter_

    def test_kmeans_pruning_identity_float32(self):
        X = _kr_data(n=300, seed=17)[:, :6]
        kw = dict(n_init=2, random_state=3, dtype="float32")
        pruned = KMeans(5, pruning="bounds", **kw).fit(X)
        plain = KMeans(5, pruning="none", **kw).fit(X)
        np.testing.assert_array_equal(pruned.labels_, plain.labels_)
        assert pruned.inertia_ == plain.inertia_

    def test_minibatch_streaming_pruning_identity_float32(self):
        X = _kr_data(n=400, cardinalities=(3, 3), seed=19)
        kw = dict(batch_size=80, max_steps=40, random_state=2, dtype="float32")
        pruned = MiniBatchKhatriRaoKMeans((3, 3), pruning="bounds", **kw).fit(X)
        plain = MiniBatchKhatriRaoKMeans((3, 3), pruning="none", **kw).fit(X)
        np.testing.assert_array_equal(pruned.labels_, plain.labels_)
        for a, b in zip(pruned.protocentroids_, plain.protocentroids_):
            np.testing.assert_array_equal(a, b)


# ----------------------------------------------------------- kernel contracts
class TestKernelDtypeContracts:
    def test_grouped_row_sum_accumulates_float64(self):
        rng = np.random.default_rng(0)
        X32 = rng.normal(size=(200, 7)).astype(np.float32)
        a = rng.integers(5, size=200)
        out = grouped_row_sum(a, X32, 5)
        assert out.dtype == np.float64
        # f4 → f8 widening is exact, so summing the float32 values equals
        # summing a pre-widened float64 copy bit for bit.
        np.testing.assert_array_equal(out, grouped_row_sum(a, X32.astype(np.float64), 5))

    def test_assign_factored_float32_matches_materialized(self):
        rng = np.random.default_rng(1)
        X = rng.normal(scale=2.0, size=(150, 16)).astype(np.float32)
        thetas = [rng.normal(size=(h, 16)).astype(np.float32) for h in (3, 4)]
        grid = khatri_rao_combine(thetas, "sum")
        assert grid.dtype == np.float32
        ref_labels, ref_d, ref_second = assign_to_nearest(X, grid, return_second=True)
        norms = np.einsum("ij,ij->i", X, X, dtype=np.float64)
        envelope = 8.0 * (16 + 8) * EPS32 * (norms + np.asarray(ref_d, np.float64))
        # Labels are only *guaranteed* to agree where the top-2 gap clears
        # the combined envelope (docs/numerics.md §3); near-ties inside it
        # may flip between kernels, so assert exactly the contract.
        decided = (np.asarray(ref_second, np.float64) - ref_d) > 2.0 * envelope
        assert decided.mean() > 0.9  # the workload must actually test labels
        for chunk in (0, 5):
            labels, d = assign_factored(X, thetas, "sum", chunk_size=chunk)
            assert d.dtype == np.float32
            assert np.all(np.abs(d.astype(np.float64) - ref_d) <= envelope)
            np.testing.assert_array_equal(labels[decided], ref_labels[decided])

    def test_update_kernels_preserve_dtype_and_agree(self):
        rng = np.random.default_rng(2)
        X32 = rng.normal(size=(300, 9)).astype(np.float32)
        thetas32 = [rng.normal(size=(h, 9)).astype(np.float32) for h in (3, 4)]
        labels = rng.integers(12, size=300)
        set_labels = np.stack(np.unravel_index(labels, (3, 4)), axis=1)
        fac = update_factored(X32, thetas32, set_labels, "sum")
        gat = update_gather(X32, thetas32, set_labels, "sum")
        assert all(t.dtype == np.float32 for t in fac + gat)
        for f, g in zip(fac, gat):
            # Both round a float64 accumulation once into float32 — they
            # agree to a couple of ulps of the stored values.
            np.testing.assert_allclose(f, g, rtol=8 * EPS32, atol=8 * EPS32)
        f64 = update_factored(
            X32.astype(np.float64),
            [t.astype(np.float64) for t in thetas32],
            set_labels, "sum",
        )
        for f, r in zip(fac, f64):
            np.testing.assert_allclose(f, r, rtol=8 * EPS32, atol=8 * EPS32)


# ------------------------------------------------------------- summary layer
class TestSummaryDtype:
    def test_astype_round_trip_and_save_load(self, tmp_path):
        X = _kr_data(n=150)
        model = KhatriRaoKMeans((3, 4), n_init=1, random_state=0).fit(X)
        summary = summarize(model)
        assert summary.dtype == np.float64
        half = summary.astype("float32")
        assert half.dtype == np.float32
        assert summary.dtype == np.float64  # original untouched
        path = half.save(tmp_path / "half.npz")
        loaded = DataSummary.load(path)
        assert loaded.dtype == np.float32
        np.testing.assert_array_equal(loaded.protocentroids[0], half.protocentroids[0])
        assert "float32" in half.report()

    def test_float32_summary_scores_in_float32(self):
        X = _kr_data(n=150)
        summary = summarize(
            KhatriRaoKMeans((3, 4), n_init=1, random_state=0).fit(X)
        ).astype("float32")
        labels = summary.assign(X)
        assert labels.shape == (150,)
        assert np.isfinite(summary.inertia(X))
        refined = summary.refine(X, n_steps=1, random_state=0)
        assert refined.dtype == np.float32

    def test_fitted_float32_model_exports_float32_summary(self):
        X = _kr_data(n=150)
        model = KhatriRaoKMeans(
            (3, 4), n_init=1, random_state=0, dtype="float32"
        ).fit(X)
        assert summarize(model).dtype == np.float32

    def test_mixed_dtype_sets_rejected(self):
        with pytest.raises(ValidationError, match="dtype"):
            DataSummary([
                np.zeros((2, 3), dtype=np.float32),
                np.zeros((2, 3), dtype=np.float64),
            ])


# ------------------------------------------------------------------ federated
class TestFederatedDtype:
    def test_communication_bytes_itemsize(self):
        assert communication_cost_bytes(10, 8, 4, 2) == 10 * 8 * 8 * 4 * 2
        assert communication_cost_bytes(10, 8, 4, 2, itemsize=4) == 10 * 8 * 4 * 4 * 2

    def test_float32_halves_broadcast_bytes(self):
        X = _kr_data(n=240)
        shards = [(X[i::3], None) for i in range(3)]
        kw = dict(aggregator="sum", n_rounds=3, random_state=0)
        f64 = KhatriRaoFederatedKMeans((3, 4), **kw).fit(shards)
        f32 = KhatriRaoFederatedKMeans((3, 4), dtype="float32", **kw).fit(shards)
        assert f32.dtype_ == np.dtype(np.float32)
        assert all(t.dtype == np.float32 for t in f32.protocentroids_)
        assert (
            f32.history_.communication_bytes[-1] * 2
            == f64.history_.communication_bytes[-1]
        )
        # Same trajectory within the envelope on separated shards.
        assert f32.history_.inertia[-1] == pytest.approx(
            f64.history_.inertia[-1], rel=1e-4
        )
        np.testing.assert_array_equal(f32.predict(X[:20]), f64.predict(X[:20]))
