"""Unit tests for the drift monitor: alerts, engine, policies."""

import numpy as np
import pytest

from repro.core.minibatch import BatchStats
from repro.exceptions import MonitoringError, ValidationError
from repro.monitoring import (
    ALERT_KINDS,
    POLICY_NAMES,
    SEVERITIES,
    AlertOnlyPolicy,
    DriftAlert,
    DriftEngine,
    PolicyAction,
    TriggerRefinePolicy,
    TriggerRefitPolicy,
    resolve_policy,
    severity_at_least,
)


def make_stats(step=1, mean_inertia=1.0, fraction=0.0, drift=0.1,
               batch_size=10):
    """A hand-built BatchStats snapshot (the engine only reads scalars)."""
    labels = np.zeros(batch_size, dtype=np.int64)
    labels.setflags(write=False)
    table = np.full(3, drift / 3.0)
    table.setflags(write=False)
    mass = float(batch_size)
    return BatchStats(
        step=step, batch_size=batch_size, mass=mass,
        inertia=mean_inertia * mass, mean_inertia=mean_inertia,
        shift=drift ** 2, reassignment_fraction=fraction,
        labels=labels, drift_norms=(table,),
    )


class TestAlerts:
    def test_severity_ladder(self):
        assert severity_at_least("critical", "warning")
        assert severity_at_least("warning", "warning")
        assert not severity_at_least("info", "warning")
        assert SEVERITIES == ("info", "warning", "critical")

    def test_severity_validates_names(self):
        with pytest.raises(ValidationError):
            severity_at_least("fatal", "warning")
        with pytest.raises(ValidationError):
            severity_at_least("warning", "whatever")

    def test_alert_round_trip(self):
        alert = DriftAlert(kind="inertia_regression", severity="warning",
                           step=7, value=2.0, baseline=1.0, threshold=1.25,
                           message="x")
        assert DriftAlert.from_dict(alert.to_dict()) == alert

    def test_action_round_trip(self):
        action = PolicyAction(kind="refit", step=3, reason="r")
        assert PolicyAction.from_dict(action.to_dict()) == action


class TestDriftEngine:
    @pytest.mark.parametrize("bad", [
        {"warmup_steps": -1},
        {"ewma_alpha": 0.0},
        {"ewma_alpha": 1.5},
        {"inertia_tolerance": -0.1},
        {"drift_tolerance": -1.0},
        {"reassignment_threshold": 0.0},
        {"critical_factor": 0.5},
        {"atol": -1e-9},
    ])
    def test_parameter_validation(self, bad):
        with pytest.raises(ValidationError):
            DriftEngine(**bad)

    def test_warmup_suppresses_alerts(self):
        engine = DriftEngine(warmup_steps=3, reassignment_threshold=0.5)
        for step in range(1, 4):
            assert engine.observe(make_stats(step=step, fraction=1.0)) == []
        assert engine.observe(make_stats(step=4, fraction=1.0)) != []

    def test_baseline_folds_after_judging(self):
        # A big jump at the first post-warmup step alerts against the
        # *pre-jump* baseline, not one contaminated by the jump itself.
        engine = DriftEngine(warmup_steps=1, ewma_alpha=1.0,
                             inertia_tolerance=0.25)
        engine.observe(make_stats(step=1, mean_inertia=1.0))
        alerts = engine.observe(make_stats(step=2, mean_inertia=2.0))
        kinds = [a.kind for a in alerts]
        assert "inertia_regression" in kinds
        alert = alerts[kinds.index("inertia_regression")]
        assert alert.baseline == 1.0
        assert alert.severity == "critical"  # 2.0 > 1 * (1 + 2*0.25)

    def test_warning_vs_critical_escalation(self):
        engine = DriftEngine(warmup_steps=1, ewma_alpha=1.0,
                             inertia_tolerance=0.25, critical_factor=2.0)
        engine.observe(make_stats(step=1, mean_inertia=1.0))
        (alert,) = engine.observe(make_stats(step=2, mean_inertia=1.4))
        assert alert.severity == "warning"

    def test_quiet_stream_stays_quiet(self):
        engine = DriftEngine(warmup_steps=2)
        for step in range(1, 20):
            assert engine.observe(make_stats(step=step)) == []
        assert engine.alerts == []

    def test_emission_order_is_fixed(self):
        engine = DriftEngine(warmup_steps=1, ewma_alpha=1.0,
                             inertia_tolerance=0.1, drift_tolerance=0.1,
                             reassignment_threshold=0.5)
        engine.observe(make_stats(step=1, mean_inertia=1.0, drift=0.1))
        alerts = engine.observe(
            make_stats(step=2, mean_inertia=10.0, fraction=1.0, drift=1.0)
        )
        assert [a.kind for a in alerts] == list(ALERT_KINDS)

    def test_reset_reenters_warmup_but_keeps_history(self):
        engine = DriftEngine(warmup_steps=1, reassignment_threshold=0.5)
        engine.observe(make_stats(step=1))
        engine.observe(make_stats(step=2, fraction=1.0))
        n_alerts = len(engine.alerts)
        assert n_alerts == 1
        engine.reset()
        assert engine.n_observed == 0
        assert len(engine.alerts) == n_alerts
        # Back in warmup: the same surge does not alert immediately.
        assert engine.observe(make_stats(step=3, fraction=1.0)) == []

    def test_state_round_trip(self):
        engine = DriftEngine(warmup_steps=1, reassignment_threshold=0.5)
        for step in range(1, 5):
            engine.observe(make_stats(step=step, fraction=float(step > 2)))
        clone = DriftEngine(warmup_steps=1, reassignment_threshold=0.5)
        clone.restore(engine.state_dict())
        assert clone.state_dict() == engine.state_dict()
        # Both continue identically from here.
        stats = make_stats(step=5, mean_inertia=3.0, fraction=1.0)
        assert engine.observe(stats) == clone.observe(stats)

    def test_restore_rejects_config_mismatch(self):
        engine = DriftEngine(warmup_steps=1)
        other = DriftEngine(warmup_steps=2)
        with pytest.raises(MonitoringError):
            other.restore(engine.state_dict())


class _Recorder:
    """Stand-in model recording what a policy does to it."""

    def __init__(self):
        self.calls = []

    def partial_fit(self, batch, sample_weight=None, index=None):
        self.calls.append(("partial_fit", sample_weight is not None))

    def reinitialize(self, batch, random_state=None):
        self.calls.append(("reinitialize", random_state.bit_generator.state))


def critical_alert(step):
    return DriftAlert(kind="inertia_regression", severity="critical",
                      step=step, value=9.0, baseline=1.0, threshold=1.25,
                      message="m")


class TestPolicies:
    def test_registry(self):
        assert POLICY_NAMES == ("alert_only", "trigger_refine",
                                "trigger_refit")
        assert isinstance(resolve_policy("alert_only"), AlertOnlyPolicy)
        policy = resolve_policy({"name": "trigger_refine", "refine_steps": 3})
        assert isinstance(policy, TriggerRefinePolicy)
        assert policy.refine_steps == 3
        instance = TriggerRefitPolicy(seed=5)
        assert resolve_policy(instance) is instance

    def test_resolve_rejections(self):
        with pytest.raises(ValidationError):
            resolve_policy("nope")
        with pytest.raises(ValidationError):
            resolve_policy(AlertOnlyPolicy(), cooldown=3)
        with pytest.raises(ValidationError):
            resolve_policy({"name": "alert_only"}, cooldown=3)
        with pytest.raises(ValidationError):
            TriggerRefinePolicy(refine_steps=0)
        with pytest.raises(ValidationError):
            AlertOnlyPolicy(cooldown=-1)

    def test_alert_only_never_acts(self):
        model = _Recorder()
        policy = AlertOnlyPolicy()
        action = policy.consider(model, None, None, make_stats(step=5),
                                 [critical_alert(5)])
        assert action is None and model.calls == []

    def test_severity_floor(self):
        model = _Recorder()
        policy = TriggerRefinePolicy(min_severity="critical")
        warning = DriftAlert(kind="inertia_regression", severity="warning",
                             step=5, value=2.0, baseline=1.0, threshold=1.25,
                             message="m")
        assert policy.consider(model, None, None, make_stats(step=5),
                               [warning]) is None
        assert model.calls == []

    def test_refine_replays_batch_and_cools_down(self):
        model = _Recorder()
        policy = TriggerRefinePolicy(refine_steps=2, cooldown=5)
        action = policy.consider(model, None, None, make_stats(step=5),
                                 [critical_alert(5)])
        assert action.kind == "refine" and action.step == 5
        assert model.calls == [("partial_fit", False)] * 2
        # Inside the cooldown window: no second intervention.
        assert policy.consider(model, None, None, make_stats(step=8),
                               [critical_alert(8)]) is None
        assert len(model.calls) == 2
        # Past it: acts again.
        assert policy.consider(model, None, None, make_stats(step=10),
                               [critical_alert(10)]).step == 10

    def test_refit_rng_is_pure_function_of_seed_and_step(self):
        states = []
        for _ in range(2):
            model = _Recorder()
            TriggerRefitPolicy(seed=3).consider(
                model, None, None, make_stats(step=7), [critical_alert(7)]
            )
            states.append(model.calls[0][1])
        assert states[0] == states[1]
        expected = np.random.default_rng([3, 7]).bit_generator.state
        assert states[0] == expected

    def test_policy_state_round_trip(self):
        policy = TriggerRefinePolicy(cooldown=5)
        policy.consider(_Recorder(), None, None, make_stats(step=5),
                        [critical_alert(5)])
        clone = TriggerRefinePolicy(cooldown=5)
        clone.restore(policy.state_dict())
        assert clone.last_trigger_step == 5
        with pytest.raises(MonitoringError):
            TriggerRefinePolicy(cooldown=6).restore(policy.state_dict())
