"""Additional federated-clustering tests: local steps, shard formats."""

import numpy as np
import pytest

from repro.datasets import federated_split, make_blobs
from repro.federated import FederatedKMeans, KhatriRaoFederatedKMeans


@pytest.fixture(scope="module")
def shards():
    X, y = make_blobs(400, n_features=3, n_clusters=4, cluster_std=0.3,
                      random_state=0)
    return federated_split(X, y, 4, alpha=1.0, random_state=0)


class TestLocalSteps:
    def test_more_local_steps_do_not_break(self, shards):
        model = FederatedKMeans(4, n_rounds=3, local_steps=3,
                                random_state=0).fit(shards)
        assert np.isfinite(model.history_.inertia[-1])

    def test_local_steps_help_early_rounds(self, shards):
        one = FederatedKMeans(4, n_rounds=1, local_steps=1,
                              random_state=0).fit(shards)
        many = FederatedKMeans(4, n_rounds=1, local_steps=5,
                               random_state=0).fit(shards)
        assert many.history_.inertia[0] <= one.history_.inertia[0] * 1.25

    def test_kr_local_steps(self, shards):
        model = KhatriRaoFederatedKMeans((2, 2), aggregator="sum", n_rounds=3,
                                         local_steps=2, random_state=0).fit(shards)
        assert len(model.history_.inertia) == 3


class TestShardHandling:
    def test_accepts_bare_arrays(self):
        rng = np.random.default_rng(1)
        bare = [rng.normal(size=(50, 2)) for _ in range(3)]
        model = FederatedKMeans(3, n_rounds=2, random_state=0).fit(bare)
        assert model.cluster_centers_.shape == (3, 2)

    def test_initial_inertia_recorded(self, shards):
        model = FederatedKMeans(4, n_rounds=2, random_state=0).fit(shards)
        assert np.isfinite(model.initial_inertia_)
        assert model.initial_inertia_ >= model.history_.inertia[0] * 0.5

    def test_kr_initial_inertia_recorded(self, shards):
        model = KhatriRaoFederatedKMeans((2, 2), aggregator="sum", n_rounds=2,
                                         random_state=0).fit(shards)
        assert np.isfinite(model.initial_inertia_)

    def test_single_sample_shard(self):
        rng = np.random.default_rng(2)
        shards = [rng.normal(size=(80, 2)), rng.normal(size=(1, 2))]
        model = FederatedKMeans(2, n_rounds=2, random_state=0).fit(shards)
        assert model.cluster_centers_.shape == (2, 2)
