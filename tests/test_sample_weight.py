"""Tests for sample-weight support in the k-Means family."""

import numpy as np
import pytest

from repro import KhatriRaoKMeans, KMeans
from repro.core import MiniBatchKhatriRaoKMeans
from repro.exceptions import ValidationError


class TestKMeansWeights:
    def test_unit_weights_match_unweighted(self, blobs_small):
        X, _ = blobs_small
        plain = KMeans(4, n_init=3, random_state=0).fit(X)
        weighted = KMeans(4, n_init=3, random_state=0).fit(X, np.ones(X.shape[0]))
        assert weighted.inertia_ == pytest.approx(plain.inertia_)
        np.testing.assert_allclose(
            np.sort(weighted.cluster_centers_, axis=0),
            np.sort(plain.cluster_centers_, axis=0),
        )

    def test_integer_weights_equal_repetition(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 2))
        counts = rng.integers(1, 4, size=30)
        repeated = np.repeat(X, counts, axis=0)
        weighted = KMeans(3, n_init=5, random_state=0).fit(X, counts.astype(float))
        replicated = KMeans(3, n_init=5, random_state=0).fit(repeated)
        assert weighted.inertia_ == pytest.approx(replicated.inertia_, rel=0.05)

    def test_heavy_point_attracts_centroid(self):
        X = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]])
        weights = np.array([1.0, 1.0, 100.0])
        model = KMeans(1, n_init=1, random_state=0).fit(X, weights)
        # Weighted mean is dominated by the heavy point.
        assert model.cluster_centers_[0, 0] > 9.0

    def test_invalid_weights(self, blobs_small):
        X, _ = blobs_small
        with pytest.raises(ValidationError):
            KMeans(2).fit(X, np.ones(3))
        with pytest.raises(ValidationError):
            KMeans(2).fit(X, -np.ones(X.shape[0]))
        with pytest.raises(ValidationError):
            KMeans(2).fit(X, np.zeros(X.shape[0]))


class TestKhatriRaoWeights:
    def test_unit_weights_match_unweighted(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        plain = KhatriRaoKMeans((3, 3), n_init=3, random_state=0).fit(X)
        weighted = KhatriRaoKMeans((3, 3), n_init=3, random_state=0).fit(
            X, np.ones(X.shape[0])
        )
        assert weighted.inertia_ == pytest.approx(plain.inertia_)

    def test_weighted_updates_are_stationary(self):
        """The weighted Prop 6.1 update minimizes the weighted objective."""
        rng = np.random.default_rng(1)
        X = rng.uniform(0.5, 2.0, size=(60, 3))
        weights = rng.uniform(0.1, 5.0, size=60)
        model = KhatriRaoKMeans((2, 3), aggregator="product", random_state=0)
        thetas = [rng.uniform(0.5, 2.0, size=(2, 3)),
                  rng.uniform(0.5, 2.0, size=(3, 3))]
        labels, _ = model._assign(X, thetas, True)
        set_labels = model.set_assignments(labels)
        updated = model._update_protocentroids(X, thetas, set_labels, rng, weights)

        from repro.linalg import khatri_rao_combine

        def objective(t1):
            centroids = khatri_rao_combine([updated[0], t1], "product")
            return float(np.sum(weights[:, None] * (X - centroids[labels]) ** 2))

        base = objective(updated[1])
        for _ in range(15):
            perturbed = updated[1] + 0.01 * rng.normal(size=updated[1].shape)
            assert objective(perturbed) >= base - 1e-9

    def test_weights_shift_protocentroids(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0.5, 2.0, size=(100, 2))
        weights = np.ones(100)
        weights[:10] = 50.0
        plain = KhatriRaoKMeans((2, 2), n_init=5, random_state=0).fit(X)
        weighted = KhatriRaoKMeans((2, 2), n_init=5, random_state=0).fit(X, weights)
        assert not np.allclose(plain.centroids(), weighted.centroids())

    def test_invalid_weights(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        with pytest.raises(ValidationError):
            KhatriRaoKMeans((2, 2)).fit(X, np.ones(5))


class TestMiniBatchWeights:
    """fit(X) grew sample_weight= to match the batch estimators (the API
    asymmetry bugfix): weighted batch numerators, mass-based learning
    rates, weighted inertia."""

    def test_unit_weights_bit_identical_to_unweighted(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        plain = MiniBatchKhatriRaoKMeans(
            (3, 3), batch_size=64, max_steps=30, random_state=0
        ).fit(X)
        weighted = MiniBatchKhatriRaoKMeans(
            (3, 3), batch_size=64, max_steps=30, random_state=0
        ).fit(X, sample_weight=np.ones(X.shape[0]))
        # Unit weights take the weighted code path but every statistic
        # (mass, numerator, eta) is value-identical, and the rng draws the
        # same batches — the trajectories coincide exactly.
        np.testing.assert_array_equal(weighted.labels_, plain.labels_)
        assert weighted.inertia_ == plain.inertia_
        assert weighted.n_steps_ == plain.n_steps_

    def test_integer_weights_approximate_repetition(self):
        rng = np.random.default_rng(0)
        base = np.array([[0.0, 0.0], [0.0, 6.0], [6.0, 0.0], [6.0, 6.0]])
        X = np.vstack([b + 0.1 * rng.normal(size=(40, 2)) for b in base])
        counts = rng.integers(1, 4, size=X.shape[0])
        weighted = MiniBatchKhatriRaoKMeans(
            (2, 2), batch_size=80, max_steps=60, random_state=0
        ).fit(X, sample_weight=counts.astype(float))
        replicated = MiniBatchKhatriRaoKMeans(
            (2, 2), batch_size=80, max_steps=60, random_state=0
        ).fit(np.repeat(X, counts, axis=0))
        # Stochastic schedules on different streams: compare the recovered
        # centroid sets, not trajectories.
        np.testing.assert_allclose(
            np.sort(weighted.centroids(), axis=0),
            np.sort(replicated.centroids(), axis=0),
            atol=0.35,
        )

    def test_heavy_points_attract_protocentroids(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0.0, 1.0, size=(120, 2))
        weights = np.ones(120)
        weights[:12] = 100.0
        plain = MiniBatchKhatriRaoKMeans(
            (2, 2), batch_size=60, max_steps=40, random_state=0
        ).fit(X)
        weighted = MiniBatchKhatriRaoKMeans(
            (2, 2), batch_size=60, max_steps=40, random_state=0
        ).fit(X, sample_weight=weights)
        assert not np.allclose(plain.centroids(), weighted.centroids())

    def test_weighted_inertia_is_weighted_objective(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        rng = np.random.default_rng(2)
        w = rng.uniform(0.5, 2.0, size=X.shape[0])
        model = MiniBatchKhatriRaoKMeans(
            (3, 3), batch_size=64, max_steps=30, random_state=0
        ).fit(X, sample_weight=w)
        centroids = model.centroids()
        expected = float(np.sum(
            w * np.sum((X - centroids[model.labels_]) ** 2, axis=1)
        ))
        assert model.inertia_ == pytest.approx(expected)

    def test_pruned_schedule_matches_unpruned_weighted(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        rng = np.random.default_rng(3)
        w = rng.uniform(0.5, 2.0, size=X.shape[0])
        pruned = MiniBatchKhatriRaoKMeans(
            (3, 3), batch_size=64, max_steps=30, random_state=0,
            pruning="bounds",
        ).fit(X, sample_weight=w)
        unpruned = MiniBatchKhatriRaoKMeans(
            (3, 3), batch_size=64, max_steps=30, random_state=0,
            pruning="none",
        ).fit(X, sample_weight=w)
        np.testing.assert_array_equal(pruned.labels_, unpruned.labels_)
        assert pruned.inertia_ == unpruned.inertia_

    def test_partial_fit_accepts_weights(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        w = np.ones(X.shape[0])
        model = MiniBatchKhatriRaoKMeans((2, 2), random_state=0)
        model.partial_fit(X[:60], sample_weight=w[:60])
        model.partial_fit(X[60:120])
        assert model.n_steps_ == 2
        assert model.predict(X).shape == (X.shape[0],)

    def test_invalid_weights(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        with pytest.raises(ValidationError):
            MiniBatchKhatriRaoKMeans((2, 2)).fit(X, sample_weight=np.ones(5))
        with pytest.raises(ValidationError):
            MiniBatchKhatriRaoKMeans((2, 2)).fit(
                X, sample_weight=-np.ones(X.shape[0])
            )
