"""Tests for sample-weight support in the k-Means family."""

import numpy as np
import pytest

from repro import KhatriRaoKMeans, KMeans
from repro.exceptions import ValidationError


class TestKMeansWeights:
    def test_unit_weights_match_unweighted(self, blobs_small):
        X, _ = blobs_small
        plain = KMeans(4, n_init=3, random_state=0).fit(X)
        weighted = KMeans(4, n_init=3, random_state=0).fit(X, np.ones(X.shape[0]))
        assert weighted.inertia_ == pytest.approx(plain.inertia_)
        np.testing.assert_allclose(
            np.sort(weighted.cluster_centers_, axis=0),
            np.sort(plain.cluster_centers_, axis=0),
        )

    def test_integer_weights_equal_repetition(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 2))
        counts = rng.integers(1, 4, size=30)
        repeated = np.repeat(X, counts, axis=0)
        weighted = KMeans(3, n_init=5, random_state=0).fit(X, counts.astype(float))
        replicated = KMeans(3, n_init=5, random_state=0).fit(repeated)
        assert weighted.inertia_ == pytest.approx(replicated.inertia_, rel=0.05)

    def test_heavy_point_attracts_centroid(self):
        X = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]])
        weights = np.array([1.0, 1.0, 100.0])
        model = KMeans(1, n_init=1, random_state=0).fit(X, weights)
        # Weighted mean is dominated by the heavy point.
        assert model.cluster_centers_[0, 0] > 9.0

    def test_invalid_weights(self, blobs_small):
        X, _ = blobs_small
        with pytest.raises(ValidationError):
            KMeans(2).fit(X, np.ones(3))
        with pytest.raises(ValidationError):
            KMeans(2).fit(X, -np.ones(X.shape[0]))
        with pytest.raises(ValidationError):
            KMeans(2).fit(X, np.zeros(X.shape[0]))


class TestKhatriRaoWeights:
    def test_unit_weights_match_unweighted(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        plain = KhatriRaoKMeans((3, 3), n_init=3, random_state=0).fit(X)
        weighted = KhatriRaoKMeans((3, 3), n_init=3, random_state=0).fit(
            X, np.ones(X.shape[0])
        )
        assert weighted.inertia_ == pytest.approx(plain.inertia_)

    def test_weighted_updates_are_stationary(self):
        """The weighted Prop 6.1 update minimizes the weighted objective."""
        rng = np.random.default_rng(1)
        X = rng.uniform(0.5, 2.0, size=(60, 3))
        weights = rng.uniform(0.1, 5.0, size=60)
        model = KhatriRaoKMeans((2, 3), aggregator="product", random_state=0)
        thetas = [rng.uniform(0.5, 2.0, size=(2, 3)),
                  rng.uniform(0.5, 2.0, size=(3, 3))]
        labels, _ = model._assign(X, thetas, True)
        set_labels = model.set_assignments(labels)
        updated = model._update_protocentroids(X, thetas, set_labels, rng, weights)

        from repro.linalg import khatri_rao_combine

        def objective(t1):
            centroids = khatri_rao_combine([updated[0], t1], "product")
            return float(np.sum(weights[:, None] * (X - centroids[labels]) ** 2))

        base = objective(updated[1])
        for _ in range(15):
            perturbed = updated[1] + 0.01 * rng.normal(size=updated[1].shape)
            assert objective(perturbed) >= base - 1e-9

    def test_weights_shift_protocentroids(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0.5, 2.0, size=(100, 2))
        weights = np.ones(100)
        weights[:10] = 50.0
        plain = KhatriRaoKMeans((2, 2), n_init=5, random_state=0).fit(X)
        weighted = KhatriRaoKMeans((2, 2), n_init=5, random_state=0).fit(X, weights)
        assert not np.allclose(plain.centroids(), weighted.centroids())

    def test_invalid_weights(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        with pytest.raises(ValidationError):
            KhatriRaoKMeans((2, 2)).fit(X, np.ones(5))
