"""Tests for layers, optimizers, training loop and autoencoders."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.exceptions import ValidationError
from repro.nn import (
    Activation,
    Adam,
    Autoencoder,
    HadamardLinear,
    Linear,
    SGD,
    Sequential,
    Trainer,
    build_autoencoder,
    iterate_minibatches,
)
from repro.nn.autoencoder import PAPER_HIDDEN_DIMS, SMALL_HIDDEN_DIMS


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, random_state=0)
        out = layer(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_parameters(self):
        layer = Linear(4, 3, random_state=0)
        assert layer.parameter_count() == 4 * 3 + 3

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, random_state=0)
        assert layer.parameter_count() == 12

    def test_gradients_flow(self):
        layer = Linear(2, 1, random_state=0)
        loss = (layer(np.ones((3, 2))) ** 2).sum()
        loss.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_set_weight(self):
        layer = Linear(2, 2, random_state=0)
        W = np.eye(2)
        layer.set_weight(W)
        out = layer(np.array([[1.0, 2.0]])).numpy()
        np.testing.assert_allclose(out, [[1.0, 2.0]] + layer.bias.numpy())

    def test_set_weight_shape_check(self):
        with pytest.raises(ValidationError):
            Linear(2, 2, random_state=0).set_weight(np.ones((3, 2)))


class TestHadamardLinear:
    def test_forward_shape(self):
        layer = HadamardLinear(6, 4, [2, 2], random_state=0)
        assert layer(np.ones((3, 6))).shape == (3, 4)

    def test_parameter_count_formula(self):
        layer = HadamardLinear(10, 8, [2, 3], random_state=0)
        expected = 2 * (10 + 8) + 3 * (10 + 8) + 8  # factors + bias
        assert layer.parameter_count() == expected

    def test_compresses_large_layers(self):
        dense = Linear(200, 100, random_state=0)
        compressed = HadamardLinear(200, 100, [10, 10], random_state=0)
        assert compressed.parameter_count() < dense.parameter_count()
        assert compressed.dense_parameter_count() == dense.parameter_count()

    def test_effective_weight_is_hadamard_product(self):
        layer = HadamardLinear(4, 3, [2, 2], random_state=0)
        manual = np.ones((4, 3))
        for A, B in layer.factors:
            manual = manual * (A.numpy() @ B.numpy())
        np.testing.assert_allclose(layer.effective_weight().numpy(), manual)

    def test_gradients_reach_all_factors(self):
        layer = HadamardLinear(3, 2, [2, 2], random_state=0)
        (layer(np.ones((4, 3))) ** 2).sum().backward()
        for A, B in layer.factors:
            assert A.grad is not None and np.any(A.grad != 0)
            assert B.grad is not None and np.any(B.grad != 0)

    def test_initialize_from_dense(self):
        rng = np.random.default_rng(0)
        target = rng.normal(size=(8, 6)) * 0.1
        layer = HadamardLinear(8, 6, [3, 3], random_state=0)
        error = layer.initialize_from_dense(target, max_iter=800, random_state=0)
        assert error < np.sum(target**2)
        approx = layer.effective_weight().numpy()
        assert np.sum((approx - target) ** 2) == pytest.approx(error)

    def test_empty_ranks(self):
        with pytest.raises(ValidationError):
            HadamardLinear(3, 3, [])

    def test_q3_factors(self):
        layer = HadamardLinear(5, 5, [2, 2, 2], random_state=0)
        assert len(layer.factors) == 3
        assert layer(np.ones((2, 5))).shape == (2, 5)


class TestActivationAndSequential:
    def test_unknown_activation(self):
        with pytest.raises(ValidationError):
            Activation("swish")

    def test_sequential_composition(self):
        net = Sequential([Linear(3, 4, random_state=0), Activation("relu"),
                          Linear(4, 2, random_state=1)])
        assert net(np.ones((5, 3))).shape == (5, 2)
        assert net.parameter_count() == (3 * 4 + 4) + (4 * 2 + 2)

    def test_identity_activation(self):
        x = np.array([[1.0, -2.0]])
        np.testing.assert_allclose(Activation("identity")(x).numpy(), x)


class TestOptimizers:
    def _quadratic_descent(self, optimizer_cls, **kwargs):
        target = np.array([3.0, -2.0])
        param = Tensor(np.zeros(2), requires_grad=True)
        optimizer = optimizer_cls([param], **kwargs)
        for _ in range(300):
            optimizer.zero_grad()
            loss = ((param - Tensor(target)) ** 2).sum()
            loss.backward()
            optimizer.step()
        return param.numpy(), target

    def test_sgd_converges(self):
        got, target = self._quadratic_descent(SGD, learning_rate=0.1)
        np.testing.assert_allclose(got, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        got, target = self._quadratic_descent(SGD, learning_rate=0.05, momentum=0.9)
        np.testing.assert_allclose(got, target, atol=1e-2)

    def test_adam_converges(self):
        got, target = self._quadratic_descent(Adam, learning_rate=0.1)
        np.testing.assert_allclose(got, target, atol=1e-2)

    def test_skips_parameters_without_grad(self):
        a = Tensor(np.zeros(2), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=True)
        optimizer = Adam([a, b], 0.1)
        loss = (a * a).sum()
        loss.backward()
        optimizer.step()
        np.testing.assert_array_equal(b.numpy(), np.ones(2))

    def test_empty_parameters_raises(self):
        with pytest.raises(ValidationError):
            SGD([], 0.1)

    def test_invalid_lr(self):
        with pytest.raises(ValidationError):
            Adam([Tensor(np.zeros(1), requires_grad=True)], 0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValidationError):
            SGD([Tensor(np.zeros(1), requires_grad=True)], 0.1, momentum=1.0)


class TestTraining:
    def test_minibatches_cover_everything(self):
        rng = np.random.default_rng(0)
        seen = np.concatenate(list(iterate_minibatches(103, 10, rng)))
        assert sorted(seen.tolist()) == list(range(103))

    def test_minibatches_no_shuffle(self):
        rng = np.random.default_rng(0)
        batches = list(iterate_minibatches(10, 4, rng, shuffle=False))
        np.testing.assert_array_equal(batches[0], [0, 1, 2, 3])

    def test_trainer_reduces_loss(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(128, 5))
        W_true = rng.normal(size=(5, 1))
        y = X @ W_true
        layer = Linear(5, 1, random_state=0)
        trainer = Trainer(Adam(layer.parameters(), 0.01), batch_size=32, random_state=0)

        def loss_fn(idx):
            prediction = layer(X[idx])
            difference = prediction - Tensor(y[idx])
            return (difference * difference).mean()

        history = trainer.run(128, loss_fn, epochs=30)
        assert history[-1] < 0.1 * history[0]

    def test_trainer_callback(self):
        calls = []
        layer = Linear(2, 1, random_state=0)
        trainer = Trainer(Adam(layer.parameters(), 0.01), batch_size=8, random_state=0)
        X = np.ones((16, 2))

        def loss_fn(idx):
            return (layer(X[idx]) ** 2).mean()

        trainer.run(16, loss_fn, epochs=3, callback=lambda e, l: calls.append((e, l)))
        assert len(calls) == 3


class TestAutoencoder:
    def test_roundtrip_shapes(self):
        ae = build_autoencoder(20, (8, 3), random_state=0)
        out = ae.forward(Tensor(np.zeros((4, 20))))
        assert out.shape == (4, 20)
        assert ae.transform(np.zeros((4, 20))).shape == (4, 3)

    def test_pretraining_reduces_reconstruction_loss(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 12)) @ rng.normal(size=(12, 12)) * 0.1
        ae = build_autoencoder(12, (8, 4), random_state=0)
        before = ae.reconstruction_loss(X)
        ae.pretrain(X, epochs=30, batch_size=25, random_state=0)
        after = ae.reconstruction_loss(X)
        assert after < before

    def test_compressed_variant_has_fewer_params_when_large(self):
        dense = build_autoencoder(300, (64, 10), random_state=0)
        compressed = build_autoencoder(300, (64, 10), compressed=True, random_state=0)
        # Boundary layers stay dense; the inner ones are compressed.
        assert compressed.parameter_count() < dense.parameter_count()
        assert compressed.dense_parameter_count() == dense.parameter_count()

    def test_compress_boundary_layers_flag(self):
        inner_only = build_autoencoder(300, (64, 10), compressed=True, random_state=0)
        everything = build_autoencoder(
            300, (64, 10), compressed=True, compress_boundary_layers=True,
            random_state=0,
        )
        assert everything.parameter_count() < inner_only.parameter_count()

    def test_paper_preset_dimensions(self):
        assert PAPER_HIDDEN_DIMS == (1024, 512, 256, 10)
        assert SMALL_HIDDEN_DIMS[-1] == 10

    def test_requires_latent_dim(self):
        with pytest.raises(ValidationError):
            build_autoencoder(10, ())

    def test_explicit_ranks(self):
        ae = build_autoencoder(
            100, (20, 5), compressed=True, ranks=[3, 3, 3], random_state=0
        )
        assert ae.forward(Tensor(np.zeros((2, 100)))).shape == (2, 100)
