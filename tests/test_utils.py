"""Tests for timing and memory utilities."""

import numpy as np

from repro.utils import Timer, peak_memory_mib, track_peak_memory


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            sum(range(10000))
        assert t.elapsed >= 0.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            sum(range(100000))
        assert t.elapsed >= 0.0
        assert t.elapsed != first or t.elapsed >= 0.0


class TestMemory:
    def test_tracks_allocation(self):
        with track_peak_memory() as mem:
            _ = np.zeros((500, 500))
        assert mem["peak_mib"] > 1.0

    def test_peak_memory_mib_returns_result(self):
        result, peak = peak_memory_mib(lambda n: np.ones((n, n)).sum(), 200)
        assert result == 200 * 200
        assert peak > 0.0

    def test_larger_allocations_report_larger_peaks(self):
        _, small = peak_memory_mib(lambda: np.zeros((100, 100)))
        _, large = peak_memory_mib(lambda: np.zeros((1000, 1000)))
        assert large > small

    def test_nested_tracking(self):
        with track_peak_memory() as outer:
            with track_peak_memory() as inner:
                _ = np.zeros((300, 300))
        assert inner["peak_mib"] > 0.0
        assert outer["peak_mib"] >= 0.0
