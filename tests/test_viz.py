"""Tests for the dependency-free visualization helpers."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.viz import ascii_bar_chart, ascii_image, ascii_line_chart, ascii_scatter, save_pgm, save_ppm


class TestNetpbm:
    def test_ppm_roundtrip_header_and_size(self, tmp_path):
        image = np.random.default_rng(0).random((5, 7, 3))
        path = save_ppm(image, tmp_path / "x.ppm")
        raw = path.read_bytes()
        assert raw.startswith(b"P6\n7 5\n255\n")
        assert len(raw) == len(b"P6\n7 5\n255\n") + 5 * 7 * 3

    def test_ppm_pixel_values(self, tmp_path):
        image = np.zeros((1, 2, 3))
        image[0, 1] = 1.0
        raw = save_ppm(image, tmp_path / "x.ppm").read_bytes()
        assert raw[-6:] == bytes([0, 0, 0, 255, 255, 255])

    def test_pgm(self, tmp_path):
        image = np.linspace(0, 1, 6).reshape(2, 3)
        raw = save_pgm(image, tmp_path / "x.pgm").read_bytes()
        assert raw.startswith(b"P5\n3 2\n255\n")
        assert len(raw) == len(b"P5\n3 2\n255\n") + 6

    def test_rejects_out_of_range(self, tmp_path):
        with pytest.raises(ValidationError):
            save_pgm(np.full((2, 2), 2.0), tmp_path / "x.pgm")

    def test_rejects_wrong_shapes(self, tmp_path):
        with pytest.raises(ValidationError):
            save_ppm(np.zeros((2, 2)), tmp_path / "x.ppm")
        with pytest.raises(ValidationError):
            save_pgm(np.zeros((2, 2, 3)), tmp_path / "x.pgm")


class TestAsciiCharts:
    def test_scatter_dimensions(self):
        rng = np.random.default_rng(0)
        out = ascii_scatter(rng.normal(size=(50, 2)), width=30, height=10)
        lines = out.splitlines()
        assert len(lines) == 12  # border + 10 rows + border
        assert all(len(line) == 32 for line in lines)

    def test_scatter_labels_use_distinct_glyphs(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        out = ascii_scatter(X, labels=[0, 1], width=20, height=5)
        assert "o" in out and "x" in out

    def test_scatter_markers(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        out = ascii_scatter(X, markers=np.array([[0.5, 0.5]]))
        assert "M" in out

    def test_scatter_rejects_non_2d(self):
        with pytest.raises(ValidationError):
            ascii_scatter(np.zeros((5, 3)))

    def test_image_shading(self):
        image = np.linspace(0, 1, 100).reshape(10, 10)
        out = ascii_image(image, width=10)
        assert " " in out and "@" in out

    def test_bar_chart(self):
        out = ascii_bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") > lines[0].count("#")

    def test_bar_chart_validation(self):
        with pytest.raises(ValidationError):
            ascii_bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValidationError):
            ascii_bar_chart([], [])

    def test_line_chart_series_glyphs(self):
        out = ascii_line_chart([1, 2, 3], {"alpha": [1, 2, 3], "beta": [3, 2, 1]})
        assert "a" in out and "b" in out
        assert "a=alpha" in out

    def test_line_chart_logy(self):
        out = ascii_line_chart([1, 2], {"s": [1.0, 1000.0]}, logy=True)
        assert "s" in out
        with pytest.raises(ValidationError):
            ascii_line_chart([1, 2], {"s": [0.0, 1.0]}, logy=True)

    def test_line_chart_requires_series(self):
        with pytest.raises(ValidationError):
            ascii_line_chart([1, 2], {})
