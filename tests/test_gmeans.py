"""Tests for G-Means and the Anderson-Darling splitting criterion."""

import numpy as np
import pytest

from repro.core import GMeans, anderson_darling_rejects_gaussian
from repro.datasets import make_blobs


class TestAndersonDarling:
    def test_accepts_gaussian_sample(self):
        rng = np.random.default_rng(0)
        assert not anderson_darling_rejects_gaussian(rng.normal(size=2000))

    def test_rejects_bimodal_sample(self):
        rng = np.random.default_rng(1)
        sample = np.concatenate([rng.normal(-5, 1, 1000), rng.normal(5, 1, 1000)])
        assert anderson_darling_rejects_gaussian(sample)

    def test_rejects_uniform_sample(self):
        rng = np.random.default_rng(2)
        assert anderson_darling_rejects_gaussian(rng.uniform(-1, 1, 5000))

    def test_tiny_samples_never_reject(self):
        assert not anderson_darling_rejects_gaussian(np.array([1.0, 2.0, 3.0]))

    def test_constant_sample(self):
        assert not anderson_darling_rejects_gaussian(np.ones(100))


class TestGMeans:
    def test_finds_approximately_true_k(self):
        X, _ = make_blobs(800, n_features=2, n_clusters=4, cluster_std=0.2,
                          random_state=0)
        model = GMeans(k_min=1, k_max=10, random_state=0).fit(X)
        assert 3 <= model.n_clusters_ <= 6

    def test_single_gaussian_stays_single(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(1500, 2))
        model = GMeans(k_min=1, k_max=8, random_state=0).fit(X)
        assert model.n_clusters_ <= 2

    def test_respects_k_max(self):
        X, _ = make_blobs(600, n_clusters=8, cluster_std=0.1, random_state=4)
        model = GMeans(k_min=1, k_max=3, random_state=0).fit(X)
        assert model.n_clusters_ <= 3

    def test_attributes(self):
        X, _ = make_blobs(400, n_clusters=3, cluster_std=0.2, random_state=5)
        model = GMeans(k_min=1, k_max=6, random_state=0).fit(X)
        assert model.cluster_centers_.shape == (model.n_clusters_, 2)
        assert model.labels_.shape == (400,)
        assert model.labels_.max() < model.n_clusters_
