"""Tests for the reverse-mode autodiff engine, including numerical checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor, logsumexp, mse_loss, no_grad, relu, sigmoid, softmax, tanh
from repro.autodiff.functional import leaky_relu
from repro.exceptions import ValidationError


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar fn w.r.t. array x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        plus = fn(x)
        x[idx] = original - eps
        minus = fn(x)
        x[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(build_loss, x0: np.ndarray, atol: float = 1e-5):
    """Compare autodiff gradient of build_loss(Tensor) against finite diffs."""
    t = Tensor(x0.copy(), requires_grad=True)
    loss = build_loss(t)
    loss.backward()
    numeric = numerical_gradient(lambda arr: float(build_loss(Tensor(arr)).numpy()), x0.copy())
    np.testing.assert_allclose(t.grad, numeric, atol=atol, rtol=1e-4)


class TestBasics:
    def test_scalar_chain(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        y = (x * x).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [4.0, 6.0])

    def test_grad_accumulates_across_uses(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2.0 + x * 3.0).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValidationError):
            (x * 2).backward()

    def test_backward_without_grad_flag(self):
        x = Tensor(np.ones(3))
        with pytest.raises(ValidationError):
            x.backward()

    def test_detach_cuts_tape(self):
        x = Tensor([3.0], requires_grad=True)
        y = (x.detach() * x).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [3.0])  # only one path contributes

    def test_no_grad_context(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * x).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_shapes_and_item(self):
        t = Tensor(np.ones((2, 3)))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6
        assert Tensor(5.0).item() == 5.0


class TestGradientsNumerically:
    def test_add_broadcast(self):
        rng = np.random.default_rng(0)
        b = rng.normal(size=(1, 4))
        check_gradient(lambda t: (t + Tensor(b)).sum(), rng.normal(size=(3, 4)))

    def test_mul_broadcast(self):
        rng = np.random.default_rng(1)
        w = rng.normal(size=(4,))
        check_gradient(lambda t: (t * Tensor(w)).sum(), rng.normal(size=(3, 4)))

    def test_matmul(self):
        rng = np.random.default_rng(2)
        W = rng.normal(size=(4, 2))
        check_gradient(lambda t: ((t @ Tensor(W)) ** 2).sum(), rng.normal(size=(3, 4)))

    def test_div(self):
        rng = np.random.default_rng(3)
        d = rng.uniform(1.0, 2.0, size=(3, 4))
        check_gradient(lambda t: (t / Tensor(d)).sum(), rng.normal(size=(3, 4)))

    def test_rdiv(self):
        rng = np.random.default_rng(17)
        check_gradient(lambda t: (1.0 / t).sum(), rng.uniform(1.0, 2.0, size=(5,)))

    def test_pow(self):
        rng = np.random.default_rng(4)
        check_gradient(lambda t: (t**3).sum(), rng.uniform(0.5, 1.5, size=(6,)))

    def test_exp_log(self):
        rng = np.random.default_rng(5)
        check_gradient(lambda t: (t.exp().log() * t).sum(), rng.uniform(0.5, 1.5, size=(6,)))

    def test_sum_axis(self):
        rng = np.random.default_rng(6)
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), rng.normal(size=(3, 4)))

    def test_sum_keepdims(self):
        rng = np.random.default_rng(7)
        check_gradient(
            lambda t: (t / t.sum(axis=1, keepdims=True)).sum(), rng.uniform(1, 2, (3, 4))
        )

    def test_mean(self):
        rng = np.random.default_rng(8)
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum(), rng.normal(size=(3, 4)))

    def test_max_no_ties(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=(3, 4)) + np.arange(12).reshape(3, 4) * 10
        check_gradient(lambda t: t.max(axis=1).sum(), x)

    def test_reshape_transpose(self):
        rng = np.random.default_rng(10)
        check_gradient(
            lambda t: ((t.reshape(4, 3).T) ** 2).sum(), rng.normal(size=(3, 4))
        )

    def test_expand_dims(self):
        rng = np.random.default_rng(11)
        other = Tensor(rng.normal(size=(1, 5, 2)))
        check_gradient(
            lambda t: ((t.expand_dims(1) - other) ** 2).sum(), rng.normal(size=(3, 2))
        )

    def test_take_rows(self):
        rng = np.random.default_rng(12)
        idx = np.array([0, 2, 2, 1])
        check_gradient(lambda t: (t.take_rows(idx) ** 2).sum(), rng.normal(size=(3, 4)))

    def test_abs(self):
        rng = np.random.default_rng(13)
        x = rng.normal(size=(5,))
        x[np.abs(x) < 0.1] = 0.5  # keep away from the kink
        check_gradient(lambda t: t.abs().sum(), x)

    def test_clip_min(self):
        rng = np.random.default_rng(14)
        x = rng.normal(size=(6,))
        x[np.abs(x) < 0.1] = 0.5
        check_gradient(lambda t: (t.clip_min(0.0) ** 2).sum(), x)

    def test_sqrt(self):
        rng = np.random.default_rng(15)
        check_gradient(lambda t: t.sqrt().sum(), rng.uniform(0.5, 2.0, size=(6,)))

    def test_neg_sub(self):
        rng = np.random.default_rng(16)
        check_gradient(lambda t: (1.0 - t - t).sum(), rng.normal(size=(4,)))

    @given(st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_random_composite_expressions(self, seed):
        rng = np.random.default_rng(seed)
        W = rng.normal(size=(3, 3))
        x0 = rng.uniform(0.5, 1.5, size=(2, 3))

        def loss(t):
            h = t @ Tensor(W)
            return ((h * h).sum(axis=1) + t.exp().sum(axis=1)).mean()

        check_gradient(loss, x0)


class TestFunctional:
    def test_relu_forward_backward(self):
        x = Tensor(np.array([-1.0, 0.5]), requires_grad=True)
        relu(x).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_leaky_relu(self):
        x = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        leaky_relu(x, 0.1).sum().backward()
        np.testing.assert_allclose(x.grad, [0.1, 1.0])

    def test_sigmoid_gradient(self):
        rng = np.random.default_rng(0)
        check_gradient(lambda t: sigmoid(t).sum(), rng.normal(size=(5,)))

    def test_sigmoid_extreme_values_stable(self):
        out = sigmoid(Tensor(np.array([-1000.0, 1000.0]))).numpy()
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_tanh_gradient(self):
        rng = np.random.default_rng(1)
        check_gradient(lambda t: tanh(t).sum(), rng.normal(size=(5,)))

    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(2)
        out = softmax(Tensor(rng.normal(size=(4, 6)))).numpy()
        np.testing.assert_allclose(out.sum(axis=1), np.ones(4))

    def test_softmax_stability_large_inputs(self):
        out = softmax(Tensor(np.array([[1e5, 0.0], [0.0, -1e5]]))).numpy()
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out.sum(axis=1), [1.0, 1.0])

    def test_softmax_gradient(self):
        rng = np.random.default_rng(3)
        w = rng.normal(size=(3, 4))
        check_gradient(
            lambda t: (softmax(t, axis=1) * Tensor(w)).sum(), rng.normal(size=(3, 4))
        )

    def test_logsumexp_matches_scipy(self):
        from scipy.special import logsumexp as scipy_lse

        rng = np.random.default_rng(4)
        x = rng.normal(size=(3, 5)) * 100
        ours = logsumexp(Tensor(x), axis=1).numpy()
        np.testing.assert_allclose(ours, scipy_lse(x, axis=1))

    def test_logsumexp_gradient(self):
        rng = np.random.default_rng(5)
        check_gradient(lambda t: logsumexp(t, axis=1).sum(), rng.normal(size=(3, 4)))

    def test_mse_loss(self):
        prediction = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        loss = mse_loss(prediction, np.array([[0.0, 0.0]]))
        assert loss.item() == pytest.approx(2.5)
        loss.backward()
        np.testing.assert_allclose(prediction.grad, [[1.0, 2.0]])
