"""API-surface tests for the deep-clustering base machinery."""

import numpy as np
import pytest

from repro.datasets import make_blobs
from repro.deep import DKM, KhatriRaoDKM
from repro.deep.base import BaseDeepClustering
from repro.exceptions import ValidationError

FAST = dict(hidden_dims=(16, 4), pretrain_epochs=2, clustering_epochs=2,
            batch_size=64, kmeans_n_init=2)


@pytest.fixture(scope="module")
def tiny_blobs():
    return make_blobs(150, n_features=6, n_clusters=4, cluster_std=0.3,
                      random_state=0)


class TestConfiguration:
    def test_requires_exactly_one_cluster_spec(self):
        with pytest.raises(ValidationError):
            BaseDeepClustering(n_clusters=4, cardinalities=(2, 2))
        with pytest.raises(ValidationError):
            BaseDeepClustering()

    def test_cardinalities_imply_n_clusters(self):
        model = BaseDeepClustering(cardinalities=(3, 4))
        assert model.n_clusters == 12
        assert model.is_khatri_rao

    def test_plain_model_is_not_kr(self):
        assert not BaseDeepClustering(n_clusters=5).is_khatri_rao

    def test_compressed_pretrain_factor_floor(self):
        model = BaseDeepClustering(n_clusters=2, compressed_pretrain_factor=0.1)
        assert model.compressed_pretrain_factor == 1.0

    def test_invalid_epochs(self):
        with pytest.raises(ValidationError):
            BaseDeepClustering(n_clusters=2, pretrain_epochs=0)


class TestFittedSurface:
    def test_loss_histories_lengths(self, tiny_blobs):
        X, _ = tiny_blobs
        model = DKM(4, random_state=0, **FAST).fit(X)
        assert len(model.pretrain_loss_) == FAST["pretrain_epochs"]
        assert len(model.clustering_loss_) == FAST["clustering_epochs"]
        assert all(np.isfinite(v) for v in model.pretrain_loss_)

    def test_pretraining_loss_decreases(self, tiny_blobs):
        X, _ = tiny_blobs
        model = DKM(4, random_state=0, hidden_dims=(16, 4), pretrain_epochs=15,
                    clustering_epochs=1, batch_size=64, kmeans_n_init=2).fit(X)
        assert model.pretrain_loss_[-1] < model.pretrain_loss_[0]

    def test_kr_centroid_params_shapes(self, tiny_blobs):
        X, _ = tiny_blobs
        model = KhatriRaoDKM((2, 2), compress_autoencoder=False,
                             random_state=0, **FAST).fit(X)
        assert [t.shape for t in model.centroid_params_] == [(2, 4), (2, 4)]
        # Gradients were applied: protocentroids moved from their init.
        assert model.centroids().shape == (4, 4)

    def test_transform_predict_consistency(self, tiny_blobs):
        X, _ = tiny_blobs
        model = DKM(4, random_state=0, **FAST).fit(X)
        Z = model.transform(X)
        centroids = model.centroids()
        manual = np.argmin(((Z[:, None] - centroids[None]) ** 2).sum(-1), axis=1)
        np.testing.assert_array_equal(manual, model.predict(X))

    def test_result_parameter_ratio_bounds(self, tiny_blobs):
        X, _ = tiny_blobs
        plain = DKM(4, random_state=0, **FAST).fit(X).result()
        assert plain.parameter_ratio == pytest.approx(1.0)
        kr = KhatriRaoDKM((2, 2), random_state=0, **FAST).fit(X).result()
        assert 0.0 < kr.parameter_ratio <= 1.0
