"""Tests for the Hadamard decomposition (Eq. 6 machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.linalg import (
    HadamardDecomposition,
    hadamard_parameter_count,
    hadamard_reconstruct,
    init_hadamard_factors,
)
from repro.linalg.hadamard import max_representable_rank


class TestReconstruct:
    def test_single_factor_is_matmul(self):
        rng = np.random.default_rng(0)
        A, B = rng.normal(size=(4, 2)), rng.normal(size=(2, 5))
        np.testing.assert_allclose(hadamard_reconstruct([(A, B)]), A @ B)

    def test_two_factors(self):
        rng = np.random.default_rng(1)
        pairs = [(rng.normal(size=(3, 2)), rng.normal(size=(2, 4))) for _ in range(2)]
        expected = (pairs[0][0] @ pairs[0][1]) * (pairs[1][0] @ pairs[1][1])
        np.testing.assert_allclose(hadamard_reconstruct(pairs), expected)

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            hadamard_reconstruct([])

    def test_incompatible_inner_dims(self):
        with pytest.raises(ValidationError):
            hadamard_reconstruct([(np.ones((3, 2)), np.ones((3, 4)))])

    def test_mismatched_output_shapes(self):
        with pytest.raises(ValidationError):
            hadamard_reconstruct(
                [
                    (np.ones((3, 2)), np.ones((2, 4))),
                    (np.ones((2, 2)), np.ones((2, 4))),
                ]
            )


class TestParameterCount:
    def test_formula(self):
        # 2 factors of rank 10 on a 100x50 matrix: 2 * 10 * 150.
        assert hadamard_parameter_count(100, 50, [10, 10]) == 3000

    def test_beats_dense_for_small_ranks(self):
        assert hadamard_parameter_count(100, 100, [10, 10]) < 100 * 100

    @given(st.integers(1, 50), st.integers(1, 50), st.lists(st.integers(1, 5), min_size=1, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_linear_in_ranks(self, d, m, ranks):
        assert hadamard_parameter_count(d, m, ranks) == sum(r * (d + m) for r in ranks)


class TestMaxRepresentableRank:
    def test_product_of_ranks(self):
        assert max_representable_rank([3, 4]) == 12

    def test_hadamard_product_exceeds_factor_rank(self):
        # Rank(A1B1 ⊙ A2B2) can exceed the ranks of both factors — the
        # representational argument behind Eq. 6.
        rng = np.random.default_rng(2)
        pairs = [(rng.normal(size=(6, 2)), rng.normal(size=(2, 6))) for _ in range(2)]
        product = hadamard_reconstruct(pairs)
        assert np.linalg.matrix_rank(product) > 2


class TestInitFactors:
    def test_shapes(self):
        factors = init_hadamard_factors(8, 6, [2, 3], random_state=0)
        assert factors[0][0].shape == (8, 2)
        assert factors[0][1].shape == (2, 6)
        assert factors[1][0].shape == (8, 3)
        assert factors[1][1].shape == (3, 6)

    def test_scale_control(self):
        factors = init_hadamard_factors(200, 200, [8, 8], scale=0.5, random_state=0)
        product = hadamard_reconstruct(factors)
        # Entry std of the product should be on the order of `scale`.
        assert 0.1 < np.std(product) < 2.5

    def test_empty_ranks_raises(self):
        with pytest.raises(ValidationError):
            init_hadamard_factors(4, 4, [])


class TestHadamardDecomposition:
    def test_recovers_exact_structure(self):
        rng = np.random.default_rng(3)
        true = hadamard_reconstruct(
            [(rng.normal(size=(10, 2)), rng.normal(size=(2, 8))) for _ in range(2)]
        )
        fit = HadamardDecomposition([2, 2], max_iter=2000, random_state=0).fit(true)
        error = np.sum((fit.reconstruct() - true) ** 2)
        assert error < 0.05 * np.sum(true**2)

    def test_loss_history_decreases(self):
        rng = np.random.default_rng(4)
        W = rng.normal(size=(12, 9))
        fit = HadamardDecomposition([3], max_iter=100, random_state=0).fit(W)
        losses = fit.loss_history_
        assert losses[-1] <= losses[0]

    def test_single_factor_matches_low_rank_error_scale(self):
        # With one factor, the decomposition is plain low-rank fitting; it
        # should get close to the SVD truncation error.
        rng = np.random.default_rng(5)
        W = rng.normal(size=(15, 10))
        fit = HadamardDecomposition([4], max_iter=3000, learning_rate=0.02,
                                    random_state=0).fit(W)
        _, s, _ = np.linalg.svd(W)
        svd_error = float(np.sum(s[4:] ** 2))
        fit_error = float(np.sum((fit.reconstruct() - W) ** 2))
        assert fit_error < 1.6 * svd_error + 1e-6

    def test_reconstruct_before_fit_raises(self):
        with pytest.raises(ValidationError):
            HadamardDecomposition([2]).reconstruct()

    def test_rejects_non_2d(self):
        with pytest.raises(ValidationError):
            HadamardDecomposition([2]).fit(np.ones(5))

    def test_parameter_count_method(self):
        decomposition = HadamardDecomposition([2, 3])
        assert decomposition.parameter_count(10, 20) == (2 + 3) * 30
