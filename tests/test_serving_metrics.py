"""Tests for serving metrics (counters, latency reservoirs) and the
token-bucket rate limiter (driven by a fake clock — no sleeping)."""

import threading

import numpy as np
import pytest

from repro.exceptions import RateLimitError
from repro.serving import LatencyReservoir, ServingMetrics, TokenBucket
from repro.serving.metrics import percentiles


class TestPercentiles:
    def test_empty_is_empty(self):
        assert percentiles([]) == {}

    def test_known_values(self):
        samples = np.arange(1, 101, dtype=float)  # 1..100
        out = percentiles(samples)
        assert out["p50"] == pytest.approx(50.5)
        assert out["p95"] == pytest.approx(95.05)
        assert out["p99"] == pytest.approx(99.01)


class TestLatencyReservoir:
    def test_snapshot_fields(self):
        reservoir = LatencyReservoir(capacity=16)
        for v in (0.1, 0.2, 0.3, 0.4):
            reservoir.record(v)
        snap = reservoir.snapshot()
        assert snap["count"] == 4
        assert snap["max"] == pytest.approx(0.4)
        assert snap["mean"] == pytest.approx(0.25)
        assert 0.1 <= snap["p50"] <= 0.4

    def test_sliding_window_keeps_recent(self):
        reservoir = LatencyReservoir(capacity=4)
        for v in range(10):  # 0..9; window holds 6,7,8,9
            reservoir.record(float(v))
        values = reservoir.values()
        np.testing.assert_array_equal(values, [6.0, 7.0, 8.0, 9.0])
        snap = reservoir.snapshot()
        assert snap["count"] == 10           # lifetime count survives
        assert snap["p50"] == pytest.approx(7.5)

    def test_empty_snapshot(self):
        snap = LatencyReservoir().snapshot()
        assert snap == {"count": 0}

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LatencyReservoir(capacity=0)


class TestServingMetrics:
    def test_counters(self):
        metrics = ServingMetrics()
        metrics.increment("x")
        metrics.increment("x", 4)
        assert metrics.counter("x") == 5
        assert metrics.counter("missing") == 0

    def test_record_max(self):
        metrics = ServingMetrics()
        metrics.record_max("batch_size_max", 3)
        metrics.record_max("batch_size_max", 7)
        metrics.record_max("batch_size_max", 5)
        assert metrics.counter("batch_size_max") == 7

    def test_latency_and_snapshot_shape(self):
        metrics = ServingMetrics()
        metrics.record_latency("assign", 0.01)
        metrics.record_latency("assign", 0.03)
        metrics.increment("requests_total")
        snap = metrics.snapshot()
        assert snap["counters"] == {"requests_total": 1}
        assert snap["latency_seconds"]["assign"]["count"] == 2
        assert metrics.latency("missing") is None

    def test_thread_safety_of_counters(self):
        metrics = ServingMetrics()

        def hammer():
            for _ in range(1000):
                metrics.increment("n")
                metrics.record_latency("op", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.counter("n") == 8000
        assert metrics.latency("op")["count"] == 8000


class TestTokenBucket:
    def test_burst_then_reject(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, capacity=3, clock=clock)
        assert all(bucket.try_acquire() for _ in range(3))
        assert not bucket.try_acquire()

    def test_refills_over_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, capacity=3, clock=clock)
        for _ in range(3):
            bucket.try_acquire()
        clock.advance(0.2)  # 2 tokens back
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_never_exceeds_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, capacity=2, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_raise_carries_retry_after(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=1, clock=clock)
        bucket.acquire_or_raise()
        with pytest.raises(RateLimitError) as excinfo:
            bucket.acquire_or_raise()
        # One token at 2/s: back in half a second.
        assert excinfo.value.retry_after == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0.5)

    def test_sub_1_rps_default_capacity(self):
        # The default burst used to be the raw rate, so any sub-1-rps
        # server (serve --rate-limit 0.5) crashed on the capacity >= 1
        # check at construction.  The default is now floored at one token.
        clock = FakeClock()
        bucket = TokenBucket(rate=0.5, clock=clock)
        assert bucket.capacity == 1.0
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(2.0)  # one token back at 0.5/s
        assert bucket.try_acquire()

    def test_sub_1_rps_retry_after(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.5, clock=clock)
        bucket.acquire_or_raise()
        with pytest.raises(RateLimitError) as excinfo:
            bucket.acquire_or_raise()
        # One token at 0.5/s: back in two seconds.
        assert excinfo.value.retry_after == pytest.approx(2.0)

    def test_explicit_fractional_capacity_still_rejected(self):
        # Only the *default* is floored; an explicit sub-token burst is
        # still a configuration error.
        with pytest.raises(ValueError):
            TokenBucket(rate=0.5, capacity=0.5)


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds
