"""Micro-batcher tests: coalescing semantics and the edge cases.

The edge cases the serving layer leans on: an empty window (no traffic)
idles cleanly, a single-request window still serves, oversize backlogs
split across kernel calls, mixed-dtype requests against one model are
cast per-request, and a request failing validation inside a coalesced
batch fails alone while its batchmates succeed.
"""

import threading
import time

import numpy as np
import pytest

from repro import KhatriRaoKMeans, summarize
from repro.datasets import make_blobs
from repro.exceptions import (
    BatcherStoppedError,
    ModelNotFoundError,
    ValidationError,
)
from repro.serving import MicroBatcher, ModelRegistry


@pytest.fixture(scope="module")
def data_and_summary():
    X, _ = make_blobs(300, n_clusters=9, random_state=0)
    model = KhatriRaoKMeans((3, 3), n_init=2, random_state=0).fit(X)
    return X, summarize(model)


@pytest.fixture
def registry(data_and_summary):
    _, summary = data_and_summary
    registry = ModelRegistry()
    registry.register("m", summary)
    return registry


@pytest.fixture
def batcher(registry):
    """Synchronous batcher: submit then drain, no worker thread."""
    return MicroBatcher(registry, start=False)


class TestCoalescing:
    def test_results_match_unbatched_path(self, data_and_summary, registry, batcher):
        X, _ = data_and_summary
        served = registry.get("m")
        chunks = [X[i:i + 7] for i in range(0, 70, 7)]
        tickets = [batcher.submit("assign", "m", c) for c in chunks]
        assert batcher.drain() == len(chunks)
        # One kernel call for all ten requests ...
        assert batcher.metrics.counter("batches_total") == 1
        assert batcher.metrics.counter("batch_size_max") == len(chunks)
        # ... and each request's slice equals its own unbatched call.
        for ticket, chunk in zip(tickets, chunks):
            np.testing.assert_array_equal(
                ticket.result()["labels"], served.assign(chunk)
            )

    def test_inertia_per_request(self, data_and_summary, registry, batcher):
        X, _ = data_and_summary
        served = registry.get("m")
        t1 = batcher.submit("inertia", "m", X[:10])
        t2 = batcher.submit("inertia", "m", X[10:50])
        batcher.drain()
        assert t1.result()["inertia"] == pytest.approx(served.inertia(X[:10]))
        assert t2.result()["inertia"] == pytest.approx(served.inertia(X[10:50]))
        assert t2.result()["rows"] == 40

    def test_single_request_window(self, data_and_summary, batcher):
        """A lone request in its window is a batch of one, not a stall."""
        X, _ = data_and_summary
        ticket = batcher.submit("assign", "m", X[:3])
        assert batcher.drain() == 1
        assert ticket.result()["labels"].shape == (3,)
        assert batcher.metrics.counter("batch_size_max") == 1

    def test_empty_window_is_a_noop(self, batcher):
        """Draining with nothing queued serves nothing and breaks nothing."""
        assert batcher.drain() == 0
        assert batcher.metrics.counter("batches_total") == 0

    def test_ops_do_not_coalesce_with_each_other(self, data_and_summary, batcher):
        X, _ = data_and_summary
        batcher.submit("assign", "m", X[:5])
        batcher.submit("inertia", "m", X[:5])
        assert batcher.drain() == 2
        assert batcher.metrics.counter("batches_total") == 2


class TestSplitting:
    def test_oversize_backlog_splits(self, data_and_summary, registry):
        X, _ = data_and_summary
        batcher = MicroBatcher(registry, max_batch_requests=4, start=False)
        tickets = [batcher.submit("assign", "m", X[i:i + 2]) for i in range(10)]
        assert batcher.drain() == 10
        assert batcher.metrics.counter("batches_total") == 3  # 4 + 4 + 2
        assert batcher.metrics.counter("batch_size_max") == 4
        for t in tickets:
            assert t.result()["labels"].shape == (2,)

    def test_row_cap_splits(self, data_and_summary, registry):
        X, _ = data_and_summary
        batcher = MicroBatcher(registry, max_batch_rows=10, start=False)
        for i in range(4):
            batcher.submit("assign", "m", X[i * 4:(i + 1) * 4])
        batcher.drain()
        # 4-row requests against a 10-row cap: 8 + 8 rows → two calls.
        assert batcher.metrics.counter("batches_total") == 2

    def test_single_oversize_request_runs_alone(self, data_and_summary, registry):
        X, _ = data_and_summary
        batcher = MicroBatcher(registry, max_batch_rows=8, start=False)
        big = batcher.submit("assign", "m", X[:50])     # larger than the cap
        small = batcher.submit("assign", "m", X[50:52])
        assert batcher.drain() == 2
        assert big.result()["labels"].shape == (50,)
        assert small.result()["labels"].shape == (2,)
        assert batcher.metrics.counter("batches_total") == 2


class TestMixedDtypeAndValidation:
    def test_mixed_dtype_requests_coalesce(self, data_and_summary, registry, batcher):
        """float64, float32 and integer payloads in one batch: each is cast
        to the model's serving dtype before concatenation."""
        X, _ = data_and_summary
        served = registry.get("m")
        t64 = batcher.submit("assign", "m", X[:4])
        t32 = batcher.submit("assign", "m", X[4:8].astype(np.float32))
        tint = batcher.submit("assign", "m", np.zeros((2, X.shape[1]), dtype=int))
        assert batcher.drain() == 3
        assert batcher.metrics.counter("batches_total") == 1
        np.testing.assert_array_equal(t64.result()["labels"], served.assign(X[:4]))
        np.testing.assert_array_equal(
            t32.result()["labels"], served.assign(X[4:8].astype(np.float32))
        )
        assert tint.result()["labels"].shape == (2,)

    def test_validation_failure_inside_batch_is_isolated(
        self, data_and_summary, batcher
    ):
        X, _ = data_and_summary
        good_before = batcher.submit("assign", "m", X[:4])
        bad_features = batcher.submit("assign", "m", np.ones((3, 5)))
        bad_nan = batcher.submit("assign", "m", np.full((2, X.shape[1]), np.nan))
        good_after = batcher.submit("assign", "m", X[4:8])
        assert batcher.drain() == 4
        assert good_before.result()["labels"].shape == (4,)
        assert good_after.result()["labels"].shape == (4,)
        with pytest.raises(ValidationError, match="features"):
            bad_features.result()
        with pytest.raises(ValidationError):
            bad_nan.result()
        # The survivors still shared one kernel call.
        assert batcher.metrics.counter("batches_total") == 1
        assert batcher.metrics.counter("batched_requests_total") == 2

    def test_bad_weight_shape_is_isolated(self, data_and_summary, batcher):
        X, _ = data_and_summary
        bad = batcher.submit("refine", "m", X[:4], sample_weight=[1.0, 2.0])
        good = batcher.submit("refine", "m", X[4:8])
        assert batcher.drain() == 2
        with pytest.raises(ValidationError, match="sample_weight"):
            bad.result()
        assert good.result()["refined"] is True

    def test_unknown_op_and_model_fail_at_submit(self, batcher):
        with pytest.raises(ValidationError, match="op must be one of"):
            batcher.submit("predict", "m", np.ones((1, 2)))
        with pytest.raises(ModelNotFoundError):
            batcher.submit("assign", "ghost", np.ones((1, 2)))


class TestRefine:
    def test_refine_batches_by_n_steps(self, data_and_summary, registry, batcher):
        X, _ = data_and_summary
        batcher.submit("refine", "m", X[:20], n_steps=1)
        batcher.submit("refine", "m", X[20:40], n_steps=1)
        batcher.submit("refine", "m", X[40:60], n_steps=2)
        assert batcher.drain() == 3
        # n_steps=1 pair coalesces; the n_steps=2 request runs alone.
        assert batcher.metrics.counter("batches_total") == 2

    def test_refine_mutates_registry_copy_and_reports_fit(
        self, data_and_summary, registry, batcher
    ):
        X, _ = data_and_summary
        before = [theta.copy() for theta in registry.get("m").protocentroids]
        ticket = batcher.submit("refine", "m", X, n_steps=2)
        batcher.drain()
        result = ticket.result()
        assert result["refined"] is True and result["rows"] == X.shape[0]
        assert result["inertia"] == pytest.approx(
            registry.get("m").inertia(X), rel=1e-5
        )
        after = registry.get("m").protocentroids
        assert any(
            not np.array_equal(b, a) for b, a in zip(before, after)
        ), "refine should move the served protocentroids"


class TestThreadedWorker:
    def test_window_coalesces_concurrent_submitters(self, data_and_summary, registry):
        X, _ = data_and_summary
        # A generous window so even a heavily loaded CI machine gets all
        # eight submitters in before the batch closes.
        batcher = MicroBatcher(registry, window_s=0.25)
        try:
            served = registry.get("m")
            tickets = []
            lock = threading.Lock()

            def client(i):
                t = batcher.submit("assign", "m", X[i * 5:(i + 1) * 5])
                with lock:
                    tickets.append((i, t))

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for i, ticket in tickets:
                np.testing.assert_array_equal(
                    ticket.result(timeout=5.0)["labels"],
                    served.assign(X[i * 5:(i + 1) * 5]),
                )
            # All eight submitters beat the 50 ms window: one kernel call.
            assert batcher.metrics.counter("batches_total") == 1
            assert batcher.metrics.counter("batch_size_max") == 8
        finally:
            batcher.stop()

    def test_zero_window_still_serves(self, data_and_summary, registry):
        X, _ = data_and_summary
        batcher = MicroBatcher(registry, window_s=0.0)
        try:
            ticket = batcher.submit("assign", "m", X[:4])
            assert ticket.result(timeout=5.0)["labels"].shape == (4,)
        finally:
            batcher.stop()

    def test_stop_flushes_backlog(self, data_and_summary, registry):
        X, _ = data_and_summary
        batcher = MicroBatcher(registry, window_s=5.0)  # window far away
        ticket = batcher.submit("assign", "m", X[:4])
        batcher.stop(flush=True)
        assert ticket.result(timeout=5.0)["labels"].shape == (4,)

    def test_stop_without_flush_fails_backlog(self, data_and_summary, registry):
        X, _ = data_and_summary
        batcher = MicroBatcher(registry, window_s=5.0)
        ticket = batcher.submit("assign", "m", X[:4])
        batcher.stop(flush=False)
        with pytest.raises(BatcherStoppedError):
            ticket.result(timeout=1.0)
        with pytest.raises(BatcherStoppedError):
            batcher.submit("assign", "m", X[:4])

    def test_latency_metrics_recorded(self, data_and_summary, registry):
        X, _ = data_and_summary
        batcher = MicroBatcher(registry, window_s=0.002)
        try:
            batcher.submit("assign", "m", X[:4]).result(timeout=5.0)
        finally:
            batcher.stop()
        snapshot = batcher.metrics.latency("assign")
        assert snapshot["count"] == 1
        assert snapshot["p50"] >= 0.0
        assert batcher.metrics.latency("batch_exec")["count"] == 1


def test_knob_validation(registry):
    with pytest.raises(ValidationError):
        MicroBatcher(registry, window_s=-1.0, start=False)
    with pytest.raises(ValidationError):
        MicroBatcher(registry, max_batch_requests=0, start=False)
    with pytest.raises(ValidationError):
        MicroBatcher(registry, start=False).submit(
            "refine", "m", np.ones((1, 2)), n_steps=0
        )
