"""Exact-equivalence tests for Hamerly bounds pruning (``core/_bounds``).

The contract of the pruning subsystem is absolute: a pruned run must
produce *bit-identical* labels, inertia and iteration counts to the
unpruned run for every ``mode × assignment × aggregator × sample_weight``
combination — the bounds may only ever skip work whose outcome is already
certain.  These tests enforce that with strict ``==`` comparisons (no
tolerances) across the grid, under hypothesis-randomized problems, through
empty-cluster reseeds, and for the top-2 kernels that seed the bounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KhatriRaoKMeans, KMeans, MiniBatchKhatriRaoKMeans
from repro.core._bounds import (
    HamerlyBounds,
    StreamingBounds,
    dense_drift,
    drift_inflation_from_tables,
)
from repro.core._distances import _chunked_argmin, assign_to_nearest
from repro.core._factored import assign_factored
from repro.datasets import make_blobs
from repro.exceptions import ValidationError
from repro.linalg import SumAggregator, khatri_rao_combine


def _problem(seed, n=120, m=4, positive=False):
    rng = np.random.default_rng(seed)
    X, _ = make_blobs(n, n_clusters=9, n_features=m, random_state=seed)
    if positive:
        X = np.abs(X) + 0.5
    weights = rng.uniform(0.1, 3.0, size=n)
    return X, weights


def _identical(reference, pruned):
    np.testing.assert_array_equal(reference.labels_, pruned.labels_)
    assert reference.inertia_ == pruned.inertia_
    assert reference.n_iter_ == pruned.n_iter_


class TestTopTwoKernels:
    """``return_second`` must report the exact second-smallest distance."""

    @given(
        seed=st.integers(0, 500),
        chunk_size=st.integers(0, 40),
        k=st.integers(1, 30),
    )
    @settings(max_examples=60, deadline=None)
    def test_assign_to_nearest_second(self, seed, chunk_size, k):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(25, 3))
        C = rng.normal(size=(k, 3))
        labels, best, second = assign_to_nearest(
            X, C, chunk_size=chunk_size, return_second=True
        )
        ref_labels, ref_best = assign_to_nearest(X, C, chunk_size=chunk_size)
        np.testing.assert_array_equal(labels, ref_labels)
        np.testing.assert_array_equal(best, ref_best)
        if k == 1:
            assert np.all(np.isinf(second))
        else:
            full = np.sort(
                np.sum((X[:, None, :] - C[None, :, :]) ** 2, axis=2), axis=1
            )
            np.testing.assert_allclose(second, full[:, 1], atol=1e-9)
            assert np.all(second >= best)

    @given(seed=st.integers(0, 300), chunk_size=st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_assign_factored_second(self, seed, chunk_size):
        rng = np.random.default_rng(seed)
        thetas = [rng.normal(size=(h, 3)) for h in (3, 4)]
        X = rng.normal(size=(20, 3))
        labels, best, second = assign_factored(
            X, thetas, "sum", chunk_size=chunk_size, return_second=True
        )
        centroids = khatri_rao_combine(thetas, "sum")
        ref_labels, _, ref_second = assign_to_nearest(
            X, centroids, return_second=True
        )
        np.testing.assert_array_equal(labels, ref_labels)
        np.testing.assert_allclose(second, ref_second, atol=1e-9)

    def test_chunked_argmin_second_merge(self):
        # Width-1 blocks stress the cross-block merge: every block second is
        # inf, so the running second must come purely from merged bests.
        rng = np.random.default_rng(7)
        scores = rng.normal(size=(10, 9))
        labels, best, second = _chunked_argmin(
            10, 9, 1, lambda s, e: scores[:, s:e], return_second=True
        )
        ranked = np.sort(scores, axis=1)
        np.testing.assert_array_equal(labels, np.argmin(scores, axis=1))
        np.testing.assert_allclose(best, ranked[:, 0])
        np.testing.assert_allclose(second, ranked[:, 1])


class TestDriftBounds:
    def test_factored_drift_bounds_every_centroid(self):
        rng = np.random.default_rng(3)
        old = [rng.normal(size=(h, 5)) for h in (3, 2, 4)]
        new = [theta + rng.normal(size=theta.shape) for theta in old]
        agg = SumAggregator()
        tables = agg.factored_drift(old, new)
        exact = dense_drift(
            khatri_rao_combine(old, agg), khatri_rao_combine(new, agg)
        )
        grid = np.stack(
            np.meshgrid(*[np.arange(h) for h in (3, 2, 4)], indexing="ij"), axis=-1
        ).reshape(-1, 3)
        bound, max_drift = drift_inflation_from_tables(tables, grid)
        assert np.all(bound >= exact - 1e-12)
        assert max_drift >= exact.max() - 1e-12

    def test_product_aggregator_has_no_factored_drift(self):
        from repro.linalg import ProductAggregator

        with pytest.raises(ValidationError):
            ProductAggregator().factored_drift([np.zeros((2, 2))], [np.zeros((2, 2))])


class TestKhatriRaoEquivalence:
    @pytest.mark.parametrize("aggregator", ["sum", "product"])
    @pytest.mark.parametrize("mode", ["time", "memory"])
    @pytest.mark.parametrize("assignment", ["factored", "materialized"])
    @pytest.mark.parametrize("weighted", [False, True])
    def test_grid(self, aggregator, mode, assignment, weighted):
        X, weights = _problem(11, positive=aggregator == "product")
        kwargs = dict(
            aggregator=aggregator, mode=mode, assignment=assignment,
            n_init=2, max_iter=40, random_state=5,
        )
        sample_weight = weights if weighted else None
        ref = KhatriRaoKMeans((3, 3), pruning="none", **kwargs).fit(
            X, sample_weight=sample_weight
        )
        pruned = KhatriRaoKMeans((3, 3), pruning="bounds", **kwargs).fit(
            X, sample_weight=sample_weight
        )
        _identical(ref, pruned)
        np.testing.assert_array_equal(ref.set_labels_, pruned.set_labels_)
        for theta_ref, theta_pruned in zip(
            ref.protocentroids_, pruned.protocentroids_
        ):
            np.testing.assert_array_equal(theta_ref, theta_pruned)
        assert ref.reassignment_fractions_ is None
        assert pruned.reassignment_fractions_ is not None
        assert pruned.reassignment_fractions_[0] == 1.0

    @given(seed=st.integers(0, 400))
    @settings(max_examples=25, deadline=None)
    def test_randomized_problems(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(70, 3))
        kwargs = dict(n_init=1, max_iter=30, random_state=seed)
        ref = KhatriRaoKMeans((2, 3), pruning="none", **kwargs).fit(X)
        pruned = KhatriRaoKMeans((2, 3), pruning="bounds", **kwargs).fit(X)
        _identical(ref, pruned)

    def test_empty_cluster_reseed_under_pruning(self):
        # Two distinct points against a (2, 2) grid: at least two of the
        # four representable centroids are always empty, so the reseed path
        # (rng draws per empty protocentroid) runs every iteration and must
        # consume the identical rng stream in both runs.
        X = np.repeat([[0.0, 0.0], [10.0, 10.0]], 20, axis=0)
        kwargs = dict(n_init=2, max_iter=15, random_state=2)
        ref = KhatriRaoKMeans((2, 2), pruning="none", **kwargs).fit(X)
        pruned = KhatriRaoKMeans((2, 2), pruning="bounds", **kwargs).fit(X)
        _identical(ref, pruned)

    def test_auto_resolution(self):
        model = KhatriRaoKMeans((2, 2))
        assert model.pruning == "auto"
        assert model._uses_pruning(materialize=True)
        assert model._uses_pruning(materialize=False)
        # Keyed on aggregator capability, not the assignment knob: a sum
        # aggregator forced onto the materialized path still has Σh_q drift
        # tables, so memory mode keeps pruning.
        assert KhatriRaoKMeans(
            (2, 2), assignment="materialized"
        )._uses_pruning(materialize=False)
        product = KhatriRaoKMeans((2, 2), aggregator="product")
        assert product._uses_pruning(materialize=True)
        # memory mode + non-decomposable aggregator would need a dense (k,)
        # drift vector, breaking the bounded-memory guarantee — auto opts out.
        assert not product._uses_pruning(materialize=False)
        assert KhatriRaoKMeans(
            (2, 2), aggregator="product", pruning="bounds"
        )._uses_pruning(materialize=False)
        assert not KhatriRaoKMeans((2, 2), pruning="none")._uses_pruning(True)

    def test_invalid_pruning_rejected(self):
        for factory in (
            lambda: KhatriRaoKMeans((2, 2), pruning="bogus"),
            lambda: KMeans(2, pruning="bogus"),
            lambda: MiniBatchKhatriRaoKMeans((2, 2), pruning="bogus"),
        ):
            with pytest.raises(ValidationError):
                factory()

    def test_late_iterations_actually_prune(self):
        X, _ = make_blobs(400, n_clusters=9, n_features=4, random_state=0)
        model = KhatriRaoKMeans(
            (3, 3), n_init=1, max_iter=60, tol=0.0, random_state=0
        ).fit(X)
        fractions = model.reassignment_fractions_
        assert len(fractions) == model.n_iter_
        tail = fractions[len(fractions) // 3:]
        assert min(tail) < 0.1  # late iterations re-score almost nobody


class TestKMeansEquivalence:
    @pytest.mark.parametrize("weighted", [False, True])
    @pytest.mark.parametrize("init", ["k-means++", "random"])
    def test_equivalence(self, weighted, init):
        X, weights = _problem(23)
        kwargs = dict(init=init, n_init=3, max_iter=60, random_state=7)
        sample_weight = weights if weighted else None
        ref = KMeans(7, pruning="none", **kwargs).fit(X, sample_weight=sample_weight)
        pruned = KMeans(7, pruning="bounds", **kwargs).fit(
            X, sample_weight=sample_weight
        )
        _identical(ref, pruned)
        np.testing.assert_array_equal(ref.cluster_centers_, pruned.cluster_centers_)

    def test_single_cluster(self):
        # k == 1: the lower bound is infinite, every point is pruned forever
        # — and the inf second-distance must not leak NaN (inf − inf) out of
        # the certified-margin deflation, so warnings are errors here.
        import warnings

        X, _ = _problem(31)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ref = KMeans(1, pruning="none", n_init=1, random_state=0).fit(X)
            pruned = KMeans(1, pruning="bounds", n_init=1, random_state=0).fit(X)
        _identical(ref, pruned)
        assert np.all(np.isinf(pruned.cluster_centers_) == False)  # noqa: E712

    def test_empty_cluster_reseed_under_pruning(self):
        # Duplicated rows + random init make duplicate centers, which empty
        # out and trigger the farthest-point reseed that needs exact
        # distances; the pruned path must recompute them, not use bounds.
        rng = np.random.default_rng(0)
        X = np.repeat(rng.normal(size=(3, 2)), 12, axis=0)
        kwargs = dict(init="random", n_init=4, max_iter=20, random_state=3)
        ref = KMeans(4, pruning="none", **kwargs).fit(X)
        pruned = KMeans(4, pruning="bounds", **kwargs).fit(X)
        _identical(ref, pruned)

    @given(seed=st.integers(0, 400))
    @settings(max_examples=25, deadline=None)
    def test_randomized_problems(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 3))
        kwargs = dict(n_init=1, max_iter=40, random_state=seed)
        ref = KMeans(5, pruning="none", **kwargs).fit(X)
        pruned = KMeans(5, pruning="bounds", **kwargs).fit(X)
        _identical(ref, pruned)


class TestMiniBatchEquivalence:
    def test_fit_equivalence(self):
        X, _ = _problem(43, n=400)
        kwargs = dict(batch_size=64, max_steps=50, random_state=1)
        ref = MiniBatchKhatriRaoKMeans((3, 3), pruning="none", **kwargs).fit(X)
        pruned = MiniBatchKhatriRaoKMeans((3, 3), pruning="bounds", **kwargs).fit(X)
        np.testing.assert_array_equal(ref.labels_, pruned.labels_)
        assert ref.inertia_ == pruned.inertia_
        assert ref.n_steps_ == pruned.n_steps_
        for theta_ref, theta_pruned in zip(
            ref.protocentroids_, pruned.protocentroids_
        ):
            np.testing.assert_array_equal(theta_ref, theta_pruned)
        fractions = pruned.reassignment_fractions_
        assert len(fractions) == pruned.n_steps_
        # Once learning rates decay, re-sampled points start getting pruned.
        assert min(fractions) < 1.0

    def test_materialized_assignment_still_prunes(self):
        # The pruning capability is the aggregator's, not the assignment
        # knob's: a sum-aggregator fit forced onto the materialized kernel
        # must still track and use streaming bounds.
        X, _ = _problem(7, n=300)
        kwargs = dict(
            batch_size=64, max_steps=40, random_state=3,
            assignment="materialized",
        )
        ref = MiniBatchKhatriRaoKMeans((3, 3), pruning="none", **kwargs).fit(X)
        pruned = MiniBatchKhatriRaoKMeans((3, 3), pruning="bounds", **kwargs).fit(X)
        np.testing.assert_array_equal(ref.labels_, pruned.labels_)
        assert ref.inertia_ == pruned.inertia_
        assert pruned.reassignment_fractions_ is not None
        assert min(pruned.reassignment_fractions_) < 1.0

    def test_product_falls_back_to_unpruned(self):
        model = MiniBatchKhatriRaoKMeans((2, 2), aggregator="product")
        assert not model.uses_pruning
        X, _ = _problem(5, n=100, positive=True)
        model.fit(X)  # must run the unpruned schedule without error
        assert model.reassignment_fractions_ is None

    def test_partial_fit_stays_unpruned(self):
        # Anonymous batches cannot prune; on a pruning-capable estimator
        # each fully-re-scored step is logged as fraction 1.0 (one entry
        # per completed step — the normalized contract), while an
        # estimator with pruning disabled keeps the log at None.
        X, _ = _problem(9, n=80)
        model = MiniBatchKhatriRaoKMeans((2, 2), random_state=0)
        model.partial_fit(X[:40]).partial_fit(X[40:])
        assert model.n_steps_ == 2
        assert model.reassignment_fractions_ == [1.0, 1.0]
        unpruned = MiniBatchKhatriRaoKMeans((2, 2), pruning="none",
                                            random_state=0)
        unpruned.partial_fit(X[:40]).partial_fit(X[40:])
        assert unpruned.reassignment_fractions_ is None


class TestBoundStates:
    def test_hamerly_bounds_lifecycle(self):
        bounds = HamerlyBounds(np.zeros(4), 2)
        assert not bounds.initialized
        bounds.initialize(np.array([1.0, 4.0, 9.0, 16.0]),
                          np.array([4.0, 9.0, 16.0, 25.0]))
        np.testing.assert_allclose(bounds.upper, [1, 2, 3, 4])
        np.testing.assert_allclose(bounds.lower, [2, 3, 4, 5])
        assert bounds.candidates().size == 0
        bounds.inflate(np.array([1.5, 0.0, 0.0, 0.0]), 0.25)
        np.testing.assert_array_equal(bounds.candidates(), [0])
        # Tightening back below the lower bound settles the point again.
        survivors = bounds.tighten(np.array([0]), np.array([1.0]))
        assert survivors.size == 0

    def test_fp_margin_widens_with_norm(self):
        # The bound seeds must account for expansion-form cancellation: a
        # point with a huge norm gets a wide certified margin, a centered
        # point a negligible one.
        bounds = HamerlyBounds(np.array([0.0, 1e14]), 3)
        bounds.initialize(np.array([1.0, 1.0]), np.array([4.0, 4.0]))
        assert abs(bounds.upper[0] - 1.0) < 1e-6
        assert bounds.upper[1] > 1.0 + 1e-3  # inflated by eps·‖x‖²
        assert bounds.lower[1] < 2.0 - 1e-3  # deflated symmetrically

    def test_streaming_bounds_settle_and_invalidate(self):
        state = StreamingBounds(np.zeros(3), 2, (2, 2))
        idx = np.array([0, 2])
        state.record(idx, np.array([1, 3]), np.array([1.0, 1.0]),
                     np.array([25.0, 25.0]))
        assert state.settled(np.array([0, 1, 2])).tolist() == [True, False, True]
        # A large drift on a protocentroid both points use invalidates them.
        state.advance([np.array([0.0, 10.0]), np.array([0.0, 10.0])])
        assert state.settled(np.array([0, 2])).tolist() == [False, False]


class TestUncenteredData:
    """Expansion-form distances lose ~eps·‖x‖² to cancellation on offset
    data; the certified bound margins must keep pruned runs exactly
    equivalent anyway (regression: strict bounds without margins wrongly
    pruned near-tied points at offset 1e7)."""

    @pytest.mark.parametrize("offset", [1e6, 1e7])
    def test_kmeans_offset_equivalence(self, offset):
        for seed in range(8):
            rng = np.random.default_rng(seed)
            X = rng.normal(size=(150, 3)) + offset
            kwargs = dict(n_init=1, max_iter=40, random_state=seed)
            ref = KMeans(6, pruning="none", **kwargs).fit(X)
            pruned = KMeans(6, pruning="bounds", **kwargs).fit(X)
            _identical(ref, pruned)

    @pytest.mark.parametrize("offset", [1e6, 1e7])
    def test_kr_offset_equivalence(self, offset):
        for seed in range(8):
            rng = np.random.default_rng(seed)
            X = rng.normal(size=(120, 3)) + offset
            kwargs = dict(n_init=1, max_iter=40, random_state=seed)
            ref = KhatriRaoKMeans((2, 3), pruning="none", **kwargs).fit(X)
            pruned = KhatriRaoKMeans((2, 3), pruning="bounds", **kwargs).fit(X)
            _identical(ref, pruned)

    def test_minibatch_offset_equivalence(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 3)) + 1e7
        kwargs = dict(batch_size=64, max_steps=40, random_state=2)
        ref = MiniBatchKhatriRaoKMeans((2, 2), pruning="none", **kwargs).fit(X)
        pruned = MiniBatchKhatriRaoKMeans((2, 2), pruning="bounds", **kwargs).fit(X)
        np.testing.assert_array_equal(ref.labels_, pruned.labels_)
        assert ref.inertia_ == pruned.inertia_
