"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def blobs_small():
    """Well-separated 2-D blobs: 4 clusters on a 2x2 grid, 120 points."""
    from repro.datasets import make_blobs

    X, y = make_blobs(120, n_features=2, n_clusters=4, cluster_std=0.2, random_state=0)
    return X, y


@pytest.fixture
def blobs_grid_9():
    """9 clusters laid out as a 3x3 additive grid (exact KR(+) structure)."""
    rng = np.random.default_rng(7)
    theta1 = np.array([[0.0, 0.0], [0.0, 6.0], [0.0, 12.0]])
    theta2 = np.array([[0.0, 0.0], [6.0, 0.0], [12.0, 0.0]])
    centroids = (theta1[:, None, :] + theta2[None, :, :]).reshape(9, 2)
    X = np.vstack([c + 0.1 * rng.normal(size=(25, 2)) for c in centroids])
    y = np.repeat(np.arange(9), 25)
    order = rng.permutation(len(y))
    return X[order], y[order], (theta1, theta2)
