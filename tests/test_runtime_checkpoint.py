"""Checkpoint/resume certification: bit-identical continuation.

The property this suite certifies is the strongest one the runtime
offers: a fit interrupted at an arbitrary iteration and resumed from its
checkpoint produces **bit-identical** labels, inertia and iteration
counts to the uninterrupted fit — across the (estimator × assignment ×
pruning × dtype) grid, because each cell snapshots a different set of
cross-iteration caches (Hamerly bounds, streaming bounds, factored
thetas).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import KhatriRaoKMeans, KMeans, MiniBatchKhatriRaoKMeans
from repro.datasets import make_blobs
from repro.exceptions import CheckpointError
from repro.runtime import (
    CheckpointConfig,
    data_fingerprint,
    read_checkpoint,
    resolve_checkpoint,
    restore_rng_state,
    serialize_rng_state,
    write_checkpoint,
)


@pytest.fixture
def X():
    data, _ = make_blobs(200, n_features=4, n_clusters=6, cluster_std=0.6,
                         random_state=3)
    return data


class InterruptAt:
    """Per-iteration callback that raises KeyboardInterrupt at a trigger."""

    def __init__(self, restart: int, iteration: int):
        self.trigger = (restart, iteration)

    def __call__(self, restart_index: int, iteration: int) -> None:
        if (restart_index, iteration) >= self.trigger:
            raise KeyboardInterrupt


# --------------------------------------------------------------- primitives
def test_rng_state_round_trip():
    a = np.random.default_rng(99)
    b = np.random.default_rng(0)
    a.normal(size=17)  # consume some stream
    restore_rng_state(b, serialize_rng_state(a))
    assert np.array_equal(a.normal(size=32), b.normal(size=32))
    assert a.integers(1 << 40) == b.integers(1 << 40)


def test_rng_state_json_round_trip():
    # The serialized state must survive the JSON header round-trip losslessly.
    a = np.random.default_rng(7)
    a.random(size=5)
    state = json.loads(json.dumps(serialize_rng_state(a)))
    b = np.random.default_rng(1)
    restore_rng_state(b, state)
    assert np.array_equal(a.random(size=8), b.random(size=8))


def test_rng_state_bit_generator_mismatch_is_typed():
    state = serialize_rng_state(np.random.default_rng(0))
    state["bit_generator"] = "MT19937"
    with pytest.raises(CheckpointError, match="MT19937"):
        restore_rng_state(np.random.default_rng(0), state)


def test_resolve_checkpoint_and_cadence(tmp_path):
    assert resolve_checkpoint(None) is None
    config = resolve_checkpoint(tmp_path / "ck.npz")
    assert isinstance(config, CheckpointConfig) and config.every == 1
    sparse = CheckpointConfig(tmp_path / "ck.npz", every=3)
    assert resolve_checkpoint(sparse) is sparse
    assert [i for i in range(1, 8) if sparse.due(i)] == [3, 6]


def test_write_read_round_trip(tmp_path):
    path = tmp_path / "state.npz"
    arrays = {
        "centers": np.arange(12, dtype=np.float32).reshape(3, 4),
        "labels": np.array([0, 2, 1], dtype=np.int64),
    }
    write_checkpoint(path, {"iteration": 5, "estimator": "T"}, arrays)
    header, loaded = read_checkpoint(path)
    assert header["iteration"] == 5 and header["format_version"] == 1
    for key, value in arrays.items():
        assert np.array_equal(loaded[key], value)
        assert loaded[key].dtype == value.dtype


def test_read_checkpoint_detects_corruption(tmp_path):
    path = tmp_path / "state.npz"
    write_checkpoint(path, {"iteration": 1}, {"centers": np.ones((2, 2))})
    header, arrays = read_checkpoint(path)
    corrupted = dict(arrays)
    corrupted["centers"] = corrupted["centers"].copy()
    corrupted["centers"][0, 0] = 5.0
    np.savez(
        path,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        **corrupted,
    )
    with pytest.raises(CheckpointError) as excinfo:
        read_checkpoint(path)
    assert excinfo.value.field == "checksum"


def test_read_checkpoint_rejects_garbage_file(tmp_path):
    path = tmp_path / "junk.npz"
    path.write_bytes(b"this is not an npz archive")
    with pytest.raises(CheckpointError):
        read_checkpoint(path)


def test_data_fingerprint_tracks_content():
    X = np.arange(20, dtype=np.float64).reshape(5, 4)
    fp = data_fingerprint(X)
    assert fp["shape"] == [5, 4] and fp["dtype"] == "float64"
    Y = X.copy()
    Y[0, 0] += 1
    assert data_fingerprint(Y)["sha256"] != fp["sha256"]
    assert data_fingerprint(X.copy()) == fp


# ----------------------------------------------------- resume bit-identity
def _fit_reference(factory, X):
    model = factory().fit(X)
    return model


def _fit_interrupted_then_resumed(factory, X, tmp_path, trigger):
    path = tmp_path / "fit.npz"
    torn = factory()
    torn.checkpoint = resolve_checkpoint(path)
    torn.callback = InterruptAt(*trigger)
    torn.fit(X)  # salvaged partial fit; checkpoint is on disk
    assert not torn.converged_
    assert path.exists()
    resumed = factory()
    resumed.checkpoint = resolve_checkpoint(path)
    resumed.resume_from = path
    return resumed.fit(X)


@pytest.mark.parametrize("pruning", ["none", "bounds"])
@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_kmeans_resume_bit_identity(X, tmp_path, pruning, dtype):
    def factory():
        return KMeans(6, n_init=3, max_iter=40, random_state=11,
                      pruning=pruning, dtype=dtype)

    reference = _fit_reference(factory, X)
    resumed = _fit_interrupted_then_resumed(
        factory, X, tmp_path, trigger=(1, 2)
    )
    assert np.array_equal(resumed.labels_, reference.labels_)
    assert resumed.inertia_ == reference.inertia_
    assert resumed.n_iter_ == reference.n_iter_
    assert np.array_equal(resumed.cluster_centers_, reference.cluster_centers_)
    assert resumed.converged_


@pytest.mark.parametrize(
    "assignment,pruning,dtype,aggregator",
    [
        ("factored", "none", "float64", "sum"),
        ("factored", "bounds", "float64", "sum"),
        ("factored", "bounds", "float32", "sum"),
        ("materialized", "none", "float64", "sum"),
        ("materialized", "bounds", "float64", "product"),
    ],
)
def test_kr_kmeans_resume_bit_identity(
    X, tmp_path, assignment, pruning, dtype, aggregator
):
    def factory():
        return KhatriRaoKMeans(
            (2, 3), aggregator=aggregator, n_init=3, max_iter=40,
            random_state=5, assignment=assignment, pruning=pruning,
            dtype=dtype,
        )

    reference = _fit_reference(factory, X)
    resumed = _fit_interrupted_then_resumed(
        factory, X, tmp_path, trigger=(1, 2)
    )
    assert np.array_equal(resumed.labels_, reference.labels_)
    assert resumed.inertia_ == reference.inertia_
    assert resumed.n_iter_ == reference.n_iter_
    for theta_resumed, theta_reference in zip(
        resumed.protocentroids_, reference.protocentroids_
    ):
        assert np.array_equal(theta_resumed, theta_reference)
    assert resumed.converged_


@pytest.mark.parametrize("pruning,dtype", [
    ("auto", "float64"),
    ("none", "float64"),
    ("auto", "float32"),
])
def test_minibatch_resume_bit_identity(X, tmp_path, pruning, dtype):
    def factory():
        return MiniBatchKhatriRaoKMeans(
            (2, 3), batch_size=40, max_steps=30, random_state=9,
            pruning=pruning, dtype=dtype,
        )

    reference = _fit_reference(factory, X)
    resumed = _fit_interrupted_then_resumed(
        factory, X, tmp_path, trigger=(0, 7)
    )
    assert np.array_equal(resumed.labels_, reference.labels_)
    assert resumed.inertia_ == reference.inertia_
    assert resumed.n_steps_ == reference.n_steps_
    for theta_resumed, theta_reference in zip(
        resumed.protocentroids_, reference.protocentroids_
    ):
        assert np.array_equal(theta_resumed, theta_reference)


def test_resume_restart_boundary_bit_identity(X, tmp_path):
    """Interrupting right at a restart boundary still resumes exactly."""

    def factory():
        return KhatriRaoKMeans((2, 3), n_init=3, max_iter=40, random_state=2)

    reference = _fit_reference(factory, X)
    resumed = _fit_interrupted_then_resumed(
        factory, X, tmp_path, trigger=(2, 1)
    )
    assert resumed.inertia_ == reference.inertia_
    assert np.array_equal(resumed.labels_, reference.labels_)


# --------------------------------------------------------- guarded resumes
def test_resume_rejects_parameter_mismatch(X, tmp_path):
    path = tmp_path / "fit.npz"
    KMeans(6, n_init=2, max_iter=40, random_state=11, checkpoint=path,
           callback=InterruptAt(0, 2)).fit(X)
    other = KMeans(5, n_init=2, max_iter=40, random_state=11,
                   resume_from=path)
    with pytest.raises(CheckpointError):
        other.fit(X)


def test_resume_rejects_different_data(X, tmp_path):
    path = tmp_path / "fit.npz"
    KMeans(6, n_init=2, max_iter=40, random_state=11, checkpoint=path,
           callback=InterruptAt(0, 2)).fit(X)
    shifted = X + 0.5
    with pytest.raises(CheckpointError):
        KMeans(6, n_init=2, max_iter=40, random_state=11,
               resume_from=path).fit(shifted)


def test_resume_rejects_wrong_estimator(X, tmp_path):
    path = tmp_path / "fit.npz"
    KMeans(6, n_init=2, max_iter=40, random_state=11, checkpoint=path,
           callback=InterruptAt(0, 2)).fit(X)
    with pytest.raises(CheckpointError):
        KhatriRaoKMeans((2, 3), n_init=2, max_iter=40, random_state=11,
                        resume_from=path).fit(X)


def test_checkpoint_cadence_still_resumes_exactly(X, tmp_path):
    """A sparse (every=5) checkpoint replays more iterations but lands on
    the same model."""
    path = tmp_path / "fit.npz"

    def factory():
        return KhatriRaoKMeans((2, 3), n_init=2, max_iter=40, random_state=4)

    reference = _fit_reference(factory, X)
    torn = factory()
    torn.checkpoint = CheckpointConfig(path, every=5)
    torn.callback = InterruptAt(1, 3)
    torn.fit(X)
    resumed = factory()
    resumed.resume_from = path
    resumed.fit(X)
    assert resumed.inertia_ == reference.inertia_
    assert np.array_equal(resumed.labels_, reference.labels_)
