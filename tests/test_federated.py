"""Tests for FkM and Khatri-Rao-FkM (Section 9.4, Figure 10)."""

import numpy as np
import pytest

from repro.datasets import federated_split, make_blobs, make_federated_digits
from repro.exceptions import NotFittedError, ValidationError
from repro.federated import (
    FederatedKMeans,
    KhatriRaoFederatedKMeans,
    communication_cost_bytes,
)


@pytest.fixture(scope="module")
def federated_blobs():
    X, y = make_blobs(600, n_features=4, n_clusters=9, cluster_std=0.3,
                      random_state=0)
    return federated_split(X, y, 5, alpha=1.0, random_state=0), X


class TestSplit:
    def test_partitions_all_samples(self):
        X, y = make_blobs(200, n_clusters=4, random_state=0)
        shards = federated_split(X, y, 4, random_state=0)
        assert sum(s[0].shape[0] for s in shards) == 200

    def test_every_client_nonempty(self):
        X, y = make_blobs(60, n_clusters=4, random_state=1)
        shards = federated_split(X, y, 10, alpha=0.1, random_state=0)
        assert all(s[0].shape[0] >= 1 for s in shards)

    def test_small_alpha_is_more_skewed(self):
        X, y = make_blobs(2000, n_clusters=10, random_state=2)

        def skew(alpha):
            shards = federated_split(X, y, 5, alpha=alpha, random_state=0)
            entropies = []
            for _, labels in shards:
                counts = np.bincount(labels.astype(int), minlength=10)
                p = counts[counts > 0] / counts.sum()
                entropies.append(-(p * np.log(p)).sum())
            return np.mean(entropies)

        assert skew(0.1) < skew(100.0)

    def test_invalid_alpha(self):
        X, y = make_blobs(50, n_clusters=2, random_state=0)
        with pytest.raises(ValidationError):
            federated_split(X, y, 2, alpha=0.0)

    def test_make_federated_digits(self):
        shards = make_federated_digits(3, 20, side=14, random_state=0)
        assert len(shards) == 3
        assert shards[0][0].shape[1] == 14 * 14


class TestCommunicationCost:
    def test_formula(self):
        # 10 vectors of 5 features to 3 clients for 2 rounds, float64.
        assert communication_cost_bytes(10, 5, 3, 2) == 10 * 5 * 8 * 3 * 2

    def test_kr_broadcast_is_cheaper(self):
        fkm = FederatedKMeans(36)
        kr = KhatriRaoFederatedKMeans((6, 6))
        assert kr.broadcast_vectors() < fkm.broadcast_vectors()


class TestFederatedKMeans:
    def test_fit_reduces_inertia(self, federated_blobs):
        shards, _ = federated_blobs
        model = FederatedKMeans(9, n_rounds=8, random_state=0).fit(shards)
        assert model.history_.inertia[-1] <= model.history_.inertia[0]

    def test_history_lengths(self, federated_blobs):
        shards, _ = federated_blobs
        model = FederatedKMeans(9, n_rounds=5, random_state=0).fit(shards)
        assert len(model.history_.inertia) == 5
        assert len(model.history_.communication_bytes) == 5
        # Communication accumulates linearly in rounds.
        bytes_per_round = model.history_.communication_bytes[0]
        assert model.history_.communication_bytes[-1] == 5 * bytes_per_round

    def test_predict(self, federated_blobs):
        shards, X = federated_blobs
        model = FederatedKMeans(9, n_rounds=3, random_state=0).fit(shards)
        labels = model.predict(X)
        assert labels.shape == (X.shape[0],)
        assert labels.max() < 9

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            FederatedKMeans(3).predict(np.ones((2, 2)))

    def test_rejects_empty_shards(self):
        with pytest.raises(ValidationError):
            FederatedKMeans(3).fit([])

    def test_rejects_mismatched_features(self):
        with pytest.raises(ValidationError):
            FederatedKMeans(2).fit(
                [(np.ones((5, 2)), None), (np.ones((5, 3)), None)]
            )


class TestKhatriRaoFederated:
    def test_fit_reduces_inertia(self, federated_blobs):
        shards, _ = federated_blobs
        model = KhatriRaoFederatedKMeans(
            (3, 3), aggregator="sum", n_rounds=8, random_state=0
        ).fit(shards)
        assert model.history_.inertia[-1] <= model.history_.inertia[0]

    def test_product_aggregator(self, federated_blobs):
        shards, _ = federated_blobs
        # Product aggregator on shifted-positive data.
        shifted = [(X - X.min() + 0.5, y) for X, y in
                   [(s[0], s[1]) for s in shards]]
        model = KhatriRaoFederatedKMeans(
            (3, 3), aggregator="product", n_rounds=5, random_state=0
        ).fit(shifted)
        assert np.isfinite(model.history_.inertia[-1])

    def test_kr_cheaper_communication_at_same_clusters(self, federated_blobs):
        """Figure 10's mechanism: same k, far less server→client traffic."""
        shards, _ = federated_blobs
        fkm = FederatedKMeans(9, n_rounds=4, random_state=0).fit(shards)
        kr = KhatriRaoFederatedKMeans((3, 3), aggregator="sum", n_rounds=4,
                                      random_state=0).fit(shards)
        assert kr.history_.communication_bytes[-1] < fkm.history_.communication_bytes[-1]
        assert kr.n_clusters == fkm.n_clusters

    def test_predict(self, federated_blobs):
        shards, X = federated_blobs
        model = KhatriRaoFederatedKMeans((3, 3), aggregator="sum", n_rounds=3,
                                         random_state=0).fit(shards)
        labels = model.predict(X)
        assert labels.max() < 9

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            KhatriRaoFederatedKMeans((2, 2)).predict(np.ones((2, 2)))
