"""Artifact integrity: atomic summary saves and content checksums.

A crash at any point of :meth:`DataSummary.save` must never leave a torn
archive where a good one stood, and a corrupted archive must never load
silently — the registry serves whatever :meth:`DataSummary.load` returns,
so corruption has to die at the load boundary with the offending field
named.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import SummaryFormatError
from repro.faults import FaultHook, FaultSchedule, WorkerKill
from repro.summary import DataSummary


@pytest.fixture
def summary():
    rng = np.random.default_rng(0)
    return DataSummary(
        [rng.normal(size=(3, 5)), rng.normal(size=(2, 5))],
        aggregator_name="sum",
        metadata={"dataset": "unit"},
    )


def _archive_payload(path):
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}


def _rewrite(path, payload):
    np.savez(path, **payload)


# ------------------------------------------------------------------ atomic
def test_save_is_atomic_and_round_trips(summary, tmp_path):
    path = summary.save(tmp_path / "artifact.npz")
    assert path == tmp_path / "artifact.npz"
    assert not (tmp_path / "artifact.npz.tmp").exists()
    loaded = DataSummary.load(path)
    for a, b in zip(summary.protocentroids, loaded.protocentroids):
        assert np.array_equal(a, b)
    assert loaded.metadata == summary.metadata


def test_save_resolves_suffixless_paths(summary, tmp_path):
    path = summary.save(tmp_path / "bare")
    assert path.name == "bare.npz" and path.exists()


@pytest.mark.parametrize("stage", ["write", "replace"])
def test_crash_during_save_preserves_previous_artifact(summary, tmp_path, stage):
    path = summary.save(tmp_path / "artifact.npz")
    before = path.read_bytes()

    class Crash(Exception):
        pass

    def crash_at(current_stage):
        if current_stage == stage:
            raise Crash

    with pytest.raises(Crash):
        summary.astype("float32").save(path, fault_hook=crash_at)
    assert path.read_bytes() == before
    assert not (tmp_path / "artifact.npz.tmp").exists()
    DataSummary.load(path)  # and it still loads cleanly


def test_worker_kill_mid_save_leaves_no_partial_file(summary, tmp_path):
    """The satellite drill: a scheduled kill tears save() down mid-write."""
    hook = FaultHook(FaultSchedule.from_spec({0: "kill"}))
    target = tmp_path / "fresh.npz"
    with pytest.raises(WorkerKill):
        summary.save(target, fault_hook=hook)
    assert hook.fired == [(0, "'write'", "kill")]
    assert not target.exists()
    assert not target.with_name("fresh.npz.tmp").exists()

    # A later kill (at the rename) still never exposes a torn archive.
    hook = FaultHook(FaultSchedule.from_spec({1: "kill"}))
    with pytest.raises(WorkerKill):
        summary.save(target, fault_hook=hook)
    assert not target.exists()
    assert not target.with_name("fresh.npz.tmp").exists()


# --------------------------------------------------------------- checksums
def test_header_carries_checksums(summary, tmp_path):
    path = summary.save(tmp_path / "artifact.npz")
    payload = _archive_payload(path)
    header = json.loads(bytes(payload["header"]).decode())
    assert set(header["checksums"]) == {
        "protocentroids_0", "protocentroids_1"
    }
    for digest in header["checksums"].values():
        assert len(digest) == 64  # hex SHA-256


def test_bit_flip_is_detected_at_load(summary, tmp_path):
    path = summary.save(tmp_path / "artifact.npz")
    payload = _archive_payload(path)
    payload["protocentroids_1"] = payload["protocentroids_1"].copy()
    payload["protocentroids_1"][0, 0] += 1e-9
    _rewrite(path, payload)
    with pytest.raises(SummaryFormatError) as excinfo:
        DataSummary.load(path)
    assert excinfo.value.field == "checksum"


def test_malformed_checksums_field_is_typed(summary, tmp_path):
    path = summary.save(tmp_path / "artifact.npz")
    payload = _archive_payload(path)
    header = json.loads(bytes(payload["header"]).decode())
    header["checksums"] = ["not", "a", "mapping"]
    payload["header"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8
    )
    _rewrite(path, payload)
    with pytest.raises(SummaryFormatError) as excinfo:
        DataSummary.load(path)
    assert excinfo.value.field == "checksum"


def test_legacy_archive_without_checksums_still_loads(summary, tmp_path):
    path = summary.save(tmp_path / "artifact.npz")
    payload = _archive_payload(path)
    header = json.loads(bytes(payload["header"]).decode())
    del header["checksums"]
    payload["header"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8
    )
    _rewrite(path, payload)
    loaded = DataSummary.load(path)
    for a, b in zip(summary.protocentroids, loaded.protocentroids):
        assert np.array_equal(a, b)
