"""Tests for the non-clustering summarization baselines (Section 2)."""

import numpy as np
import pytest

from repro.applications import compare_summaries, pca_summary, sampling_summary
from repro.datasets import make_blobs
from repro.exceptions import ValidationError


class TestSampling:
    def test_uniform_returns_data_points(self):
        X, _ = make_blobs(100, n_clusters=4, random_state=0)
        sample = sampling_summary(X, 5, random_state=0)
        assert sample.shape == (5, 2)
        for row in sample:
            assert np.any(np.all(np.isclose(X, row), axis=1))

    def test_weighted_spreads_over_modes(self):
        X, y = make_blobs(400, n_clusters=4, cluster_std=0.1, random_state=1)
        from repro.core._distances import assign_to_nearest

        sample = sampling_summary(X, 4, weighted=True, random_state=0)
        labels, _ = assign_to_nearest(X, sample)
        # D² sampling should carve out most of the 4 far-apart blobs.
        assert len(np.unique(labels)) >= 3

    def test_budget_capped_at_n(self):
        X = np.random.default_rng(0).normal(size=(3, 2))
        assert sampling_summary(X, 10, random_state=0).shape[0] == 3


class TestPCA:
    def test_sketch_contents(self):
        X, _ = make_blobs(100, n_features=5, n_clusters=3, random_state=2)
        sketch = pca_summary(X, 2)
        assert sketch["mean"].shape == (5,)
        assert sketch["axes"].shape == (2, 5)
        assert np.all(np.diff(sketch["singular_values"]) <= 1e-9)

    def test_axes_orthonormal(self):
        X, _ = make_blobs(120, n_features=6, n_clusters=3, random_state=3)
        axes = pca_summary(X, 3)["axes"]
        np.testing.assert_allclose(axes @ axes.T, np.eye(3), atol=1e-8)

    def test_rank_clipped(self):
        X = np.random.default_rng(1).normal(size=(10, 3))
        sketch = pca_summary(X, 50)
        assert sketch["axes"].shape[0] <= 2


class TestCompareSummaries:
    def test_budgets_and_methods(self):
        X, _ = make_blobs(300, n_clusters=9, random_state=4)
        rows = compare_summaries(X, (3, 3), n_init=3, random_state=0)
        methods = [row.method for row in rows]
        assert methods == [
            "uniform-sample", "d2-sample", "k-means(6)", "pca-sketch",
            "khatri-rao-k-means(3, 3)",
        ]
        # Sampling / k-means / KR all store the same vector budget.
        budget_params = 6 * X.shape[1]
        for row in rows:
            if row.method != "pca-sketch":
                assert row.parameters == budget_params

    def test_kr_beats_sampling_at_same_budget(self):
        X, _ = make_blobs(500, n_clusters=25, cluster_std=0.3, random_state=5)
        rows = {row.method: row for row in
                compare_summaries(X, (5, 5), n_init=5, random_state=0)}
        kr = rows["khatri-rao-k-means(5, 5)"]
        assert kr.inertia < rows["uniform-sample"].inertia
        assert kr.inertia < rows["d2-sample"].inertia
        # And, on many-cluster data, beats k-means at the same budget
        # (the paper's central claim).
        assert kr.inertia < rows["k-means(10)"].inertia

    def test_invalid_cardinalities(self):
        X = np.random.default_rng(0).normal(size=(30, 2))
        with pytest.raises(ValidationError):
            compare_summaries(X, (0, 3))
