"""Tests for BIC scoring, X-Means and Khatri-Rao X-Means (Section 8)."""

import numpy as np
import pytest

from repro.core import KhatriRaoXMeans, KMeans, XMeans, bic_score
from repro.datasets import make_blobs
from repro.exceptions import NotFittedError


@pytest.fixture(scope="module")
def four_blobs():
    return make_blobs(240, n_features=2, n_clusters=4, cluster_std=0.2,
                      random_state=3)


class TestBIC:
    def test_prefers_true_k_over_underfit(self, four_blobs):
        X, _ = four_blobs
        scores = {}
        for k in (1, 2, 4):
            model = KMeans(k, n_init=5, random_state=0).fit(X)
            scores[k] = bic_score(X, model.labels_, model.cluster_centers_)
        assert scores[4] > scores[2] > scores[1]

    def test_penalizes_overfit(self, four_blobs):
        X, _ = four_blobs
        model4 = KMeans(4, n_init=5, random_state=0).fit(X)
        model40 = KMeans(40, n_init=5, random_state=0).fit(X)
        assert bic_score(X, model4.labels_, model4.cluster_centers_) > bic_score(
            X, model40.labels_, model40.cluster_centers_
        )

    def test_custom_parameter_count_reduces_penalty(self, four_blobs):
        X, _ = four_blobs
        model = KMeans(4, n_init=5, random_state=0).fit(X)
        full = bic_score(X, model.labels_, model.cluster_centers_)
        discounted = bic_score(
            X, model.labels_, model.cluster_centers_, n_parameters=4
        )
        assert discounted > full

    def test_degenerate_returns_neg_inf(self):
        X = np.ones((3, 2))
        assert bic_score(X, [0, 1, 2], np.ones((3, 2))) == -np.inf


class TestXMeans:
    def test_finds_approximately_true_k(self, four_blobs):
        X, _ = four_blobs
        model = XMeans(k_min=2, k_max=10, random_state=0).fit(X)
        assert 3 <= model.n_clusters_ <= 6

    def test_respects_k_max(self, four_blobs):
        X, _ = four_blobs
        model = XMeans(k_min=2, k_max=3, random_state=0).fit(X)
        assert model.n_clusters_ <= 3

    def test_attributes(self, four_blobs):
        X, _ = four_blobs
        model = XMeans(k_min=2, k_max=8, random_state=0).fit(X)
        assert model.cluster_centers_.shape == (model.n_clusters_, 2)
        assert model.labels_.shape == (X.shape[0],)
        assert np.isfinite(model.bic_)


class TestKhatriRaoXMeans:
    def test_grows_toward_true_structure(self):
        X, _ = make_blobs(300, n_features=2, n_clusters=9, cluster_std=0.15,
                          random_state=5)
        model = KhatriRaoXMeans(
            initial_cardinalities=(2, 2), max_vectors=8, n_init=3,
            random_state=0,
        ).fit(X)
        assert model.cardinalities_ is not None
        assert sum(model.cardinalities_) <= 8
        # Growth should have been accepted at least once for 9 blobs.
        assert np.prod(model.cardinalities_) > 4

    def test_history_recorded(self):
        X, _ = make_blobs(150, n_features=2, n_clusters=4, cluster_std=0.2,
                          random_state=6)
        model = KhatriRaoXMeans(
            initial_cardinalities=(2, 2), max_vectors=6, n_init=2,
            random_state=0,
        ).fit(X)
        assert len(model.history_) >= 1
        cards0, bic0 = model.history_[0]
        assert cards0 == (2, 2)
        assert np.isfinite(bic0)

    def test_predict(self):
        X, _ = make_blobs(150, n_features=2, n_clusters=4, cluster_std=0.2,
                          random_state=7)
        model = KhatriRaoXMeans(
            initial_cardinalities=(2, 2), max_vectors=5, n_init=2,
            random_state=0,
        ).fit(X)
        labels = model.predict(X)
        assert labels.shape == (X.shape[0],)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            KhatriRaoXMeans().predict(np.ones((2, 2)))

    def test_allow_new_sets(self):
        X, _ = make_blobs(200, n_features=2, n_clusters=8, cluster_std=0.2,
                          random_state=8)
        model = KhatriRaoXMeans(
            initial_cardinalities=(2, 2), max_vectors=8, allow_new_sets=True,
            n_init=2, random_state=0,
        ).fit(X)
        assert model.cardinalities_ is not None
