"""Tests for Khatri-Rao-k-Means (Algorithm 1 / Proposition 6.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import KhatriRaoKMeans, KMeans
from repro.exceptions import NotFittedError, ValidationError
from repro.linalg import khatri_rao_combine
from repro.metrics import adjusted_rand_index, inertia, unsupervised_clustering_accuracy


class TestBasics:
    def test_properties(self):
        model = KhatriRaoKMeans((3, 4))
        assert model.n_clusters == 12
        assert model.n_protocentroids == 7

    def test_fit_shapes(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        model = KhatriRaoKMeans((3, 3), aggregator="sum", n_init=5, random_state=0).fit(X)
        assert len(model.protocentroids_) == 2
        assert model.protocentroids_[0].shape == (3, 2)
        assert model.labels_.shape == (X.shape[0],)
        assert model.set_labels_.shape == (X.shape[0], 2)
        assert model.centroids().shape == (9, 2)

    def test_parameter_count(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        model = KhatriRaoKMeans((3, 3), n_init=2, random_state=0).fit(X)
        assert model.parameter_count() == 6 * 2  # (h1+h2) * m

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            KhatriRaoKMeans(())
        with pytest.raises(ValidationError):
            KhatriRaoKMeans((2, 0))
        with pytest.raises(ValidationError):
            KhatriRaoKMeans((2, 2), init="bogus")
        with pytest.raises(ValidationError):
            KhatriRaoKMeans((2, 2), mode="bogus")
        with pytest.raises(ValidationError):
            KhatriRaoKMeans((2, 2), aggregator="min")

    def test_not_fitted(self):
        model = KhatriRaoKMeans((2, 2))
        with pytest.raises(NotFittedError):
            model.centroids()
        with pytest.raises(NotFittedError):
            model.predict(np.ones((2, 2)))

    def test_feature_mismatch_on_predict(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        model = KhatriRaoKMeans((3, 3), n_init=2, random_state=0).fit(X)
        with pytest.raises(ValidationError):
            model.predict(np.ones((2, 7)))


class TestCorrectness:
    def test_recovers_additive_grid(self, blobs_grid_9):
        """On exactly KR(+)-structured data, the 3x3 model recovers all 9
        clusters.  Like the paper (which restarts 20 times and keeps the
        best), recovery needs several initializations — we use 50 since this
        grid's local minima are adversarial."""
        X, y, _ = blobs_grid_9
        model = KhatriRaoKMeans(
            (3, 3), aggregator="sum", n_init=50, random_state=0
        ).fit(X)
        assert adjusted_rand_index(y, model.labels_) == pytest.approx(1.0)

    def test_recovers_multiplicative_grid(self):
        from repro.datasets import make_khatri_rao_blobs

        X, y, _ = make_khatri_rao_blobs(
            (3, 3), n_samples=450, aggregator="product", cluster_std=0.05,
            random_state=2,
        )
        model = KhatriRaoKMeans(
            (3, 3), aggregator="product", n_init=20, random_state=0
        ).fit(X)
        assert adjusted_rand_index(y, model.labels_) > 0.95

    def test_beats_equal_parameter_kmeans_on_structured_data(self, blobs_grid_9):
        """The paper's headline: KR with h1+h2 vectors beats k-means with h1+h2 centroids."""
        X, _, _ = blobs_grid_9
        kr = KhatriRaoKMeans((3, 3), aggregator="sum", n_init=20, random_state=0).fit(X)
        km = KMeans(6, n_init=20, random_state=0).fit(X)
        assert kr.inertia_ < km.inertia_

    def test_never_beats_full_kmeans_materially(self, blobs_grid_9):
        """k-Means with h1*h2 centroids is the optimistic bound (Table 2)."""
        X, _, _ = blobs_grid_9
        kr = KhatriRaoKMeans((3, 3), aggregator="sum", n_init=20, random_state=0).fit(X)
        km = KMeans(9, n_init=20, random_state=0).fit(X)
        assert kr.inertia_ >= km.inertia_ * 0.999

    def test_inertia_matches_reported_labels(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        model = KhatriRaoKMeans((3, 3), n_init=5, random_state=0).fit(X)
        assert model.inertia_ == pytest.approx(
            inertia(X, model.labels_, model.centroids())
        )

    def test_labels_consistent_with_set_labels(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        model = KhatriRaoKMeans((3, 3), n_init=3, random_state=0).fit(X)
        reconstructed = np.ravel_multi_index(
            tuple(model.set_labels_.T), model.cardinalities
        )
        np.testing.assert_array_equal(reconstructed, model.labels_)

    def test_predict_matches_labels(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        model = KhatriRaoKMeans((3, 3), n_init=3, random_state=0).fit(X)
        np.testing.assert_array_equal(model.predict(X), model.labels_)

    def test_single_set_reduces_to_kmeans_objective(self, blobs_small):
        """With p=1 and h1=k, the problem is exactly k-Means (Section 4.1)."""
        X, y = blobs_small
        kr = KhatriRaoKMeans((4,), n_init=20, random_state=0).fit(X)
        km = KMeans(4, init="random", n_init=20, random_state=0).fit(X)
        assert kr.inertia_ == pytest.approx(km.inertia_, rel=1e-6)

    def test_three_sets(self):
        from repro.datasets import make_khatri_rao_blobs

        X, y, _ = make_khatri_rao_blobs(
            (2, 2, 2), n_samples=400, n_features=3, aggregator="sum",
            cluster_std=0.05, random_state=1,
        )
        model = KhatriRaoKMeans(
            (2, 2, 2), aggregator="sum", n_init=20, random_state=0
        ).fit(X)
        assert model.centroids().shape == (8, 3)
        assert adjusted_rand_index(y, model.labels_) > 0.9

    def test_stickfigures_perfect_summary(self):
        """Reproduces the Table 2 stickfigures row: ACC = 1.0 with 6 vectors."""
        from repro.datasets import load_dataset

        ds = load_dataset("stickfigures", scale=0.2, random_state=0)
        model = KhatriRaoKMeans(
            (3, 3), aggregator="sum", n_init=20, random_state=0
        ).fit(ds.data)
        assert unsupervised_clustering_accuracy(ds.labels, model.labels_) == 1.0
        assert model.parameter_count() == 6 * ds.n_features


class TestUpdates:
    """Proposition 6.1: closed-form updates are stationary points."""

    @pytest.mark.parametrize("aggregator", ["sum", "product"])
    def test_update_minimizes_objective(self, aggregator):
        rng = np.random.default_rng(0)
        X = rng.uniform(0.5, 2.0, size=(60, 3))
        model = KhatriRaoKMeans((2, 3), aggregator=aggregator, n_init=1,
                                max_iter=1, random_state=0)
        thetas = [rng.uniform(0.5, 2.0, size=(2, 3)), rng.uniform(0.5, 2.0, size=(3, 3))]
        labels, _ = model._assign(X, thetas, True)
        set_labels = model.set_assignments(labels)
        updated = model._update_protocentroids(X, thetas, set_labels, rng)

        # The second set is updated last, so it is the stationary point of
        # the objective given the (already updated) first set and fixed
        # assignments — perturbing it can only increase the objective.
        def objective(t1):
            centroids = khatri_rao_combine([updated[0], t1], aggregator)
            return np.sum((X - centroids[labels]) ** 2)

        base = objective(updated[1])
        for _ in range(20):
            perturbed = updated[1] + 0.01 * rng.normal(size=updated[1].shape)
            assert objective(perturbed) >= base - 1e-9

    def test_sum_update_formula(self):
        # Directly verify Prop 6.1 for the sum aggregator on a tiny case.
        rng = np.random.default_rng(1)
        X = rng.normal(size=(30, 2))
        model = KhatriRaoKMeans((2, 2), aggregator="sum", random_state=0)
        thetas = [rng.normal(size=(2, 2)), rng.normal(size=(2, 2))]
        labels, _ = model._assign(X, thetas, True)
        set_labels = model.set_assignments(labels)
        updated = model._update_protocentroids(X, thetas, set_labels, rng)
        for j in range(2):
            mask = set_labels[:, 0] == j
            if not mask.any():
                continue
            expected = np.mean(
                X[mask] - thetas[1][set_labels[mask, 1]], axis=0
            )
            np.testing.assert_allclose(updated[0][j], expected, atol=1e-12)

    def test_product_update_formula(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0.5, 2.0, size=(40, 2))
        model = KhatriRaoKMeans((2, 2), aggregator="product", random_state=0)
        thetas = [rng.uniform(0.5, 2.0, size=(2, 2)), rng.uniform(0.5, 2.0, size=(2, 2))]
        labels, _ = model._assign(X, thetas, True)
        set_labels = model.set_assignments(labels)
        updated = model._update_protocentroids(X, thetas, set_labels, rng)
        for j in range(2):
            mask = set_labels[:, 0] == j
            if not mask.any():
                continue
            rest = thetas[1][set_labels[mask, 1]]
            expected = np.sum(X[mask] * rest, axis=0) / np.sum(rest * rest, axis=0)
            np.testing.assert_allclose(updated[0][j], expected, atol=1e-10)


class TestModes:
    @pytest.mark.parametrize("chunk_size", [1, 3, 7, 100])
    def test_memory_mode_matches_time_mode(self, blobs_grid_9, chunk_size):
        X, _, _ = blobs_grid_9
        time_model = KhatriRaoKMeans(
            (3, 3), mode="time", n_init=3, random_state=5
        ).fit(X)
        memory_model = KhatriRaoKMeans(
            (3, 3), mode="memory", chunk_size=chunk_size, n_init=3, random_state=5
        ).fit(X)
        assert memory_model.inertia_ == pytest.approx(time_model.inertia_)
        np.testing.assert_array_equal(memory_model.labels_, time_model.labels_)

    def test_auto_mode_runs(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        model = KhatriRaoKMeans((3, 3), mode="auto", n_init=2, random_state=0).fit(X)
        assert np.isfinite(model.inertia_)

    def test_plus_plus_init(self, blobs_grid_9):
        X, y, _ = blobs_grid_9
        model = KhatriRaoKMeans(
            (3, 3), init="kr-k-means++", aggregator="sum", n_init=10, random_state=0
        ).fit(X)
        # ++-style seeding finds a reasonable (not necessarily optimal)
        # solution within few restarts.
        assert adjusted_rand_index(y, model.labels_) > 0.7

    def test_plus_plus_init_product(self):
        from repro.datasets import make_khatri_rao_blobs

        X, y, _ = make_khatri_rao_blobs(
            (2, 3), n_samples=300, aggregator="product", cluster_std=0.05,
            random_state=4,
        )
        model = KhatriRaoKMeans(
            (2, 3), init="kr-k-means++", aggregator="product", n_init=10,
            random_state=0,
        ).fit(X)
        assert np.isfinite(model.inertia_)


class TestProperties:
    @given(st.integers(2, 4), st.integers(2, 4), st.sampled_from(["sum", "product"]))
    @settings(max_examples=10, deadline=None)
    def test_fit_invariants(self, h1, h2, aggregator):
        rng = np.random.default_rng(h1 * 10 + h2)
        X = rng.uniform(0.5, 3.0, size=(80, 3))
        model = KhatriRaoKMeans(
            (h1, h2), aggregator=aggregator, n_init=2, max_iter=30, random_state=0
        ).fit(X)
        # Labels are valid flat indices.
        assert model.labels_.min() >= 0
        assert model.labels_.max() < h1 * h2
        # Inertia equals recomputed objective.
        assert model.inertia_ == pytest.approx(
            inertia(X, model.labels_, model.centroids())
        )
        # Centroid count and parameter count follow the formulas.
        assert model.centroids().shape == (h1 * h2, 3)
        assert model.parameter_count() == (h1 + h2) * 3

    @given(st.integers(0, 5))
    @settings(max_examples=6, deadline=None)
    def test_restarts_never_hurt(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 2))
        one = KhatriRaoKMeans((2, 2), n_init=1, random_state=seed).fit(X)
        many = KhatriRaoKMeans((2, 2), n_init=8, random_state=seed).fit(X)
        assert many.inertia_ <= one.inertia_ + 1e-9
