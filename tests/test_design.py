"""Tests for the Section 8 design-choice utilities (Propositions 8.1/8.2)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    balanced_factor_pair,
    balanced_factorization,
    max_centroids_for_budget,
    optimal_num_sets,
    sets_bounds_for_k,
    suggest_aggregator,
)
from repro.exceptions import ValidationError
from repro.linalg import khatri_rao_combine


class TestBalancedFactorPair:
    def test_paper_example(self):
        assert balanced_factor_pair(40) == (8, 5)

    def test_square(self):
        assert balanced_factor_pair(36) == (6, 6)

    def test_prime(self):
        assert balanced_factor_pair(13) == (13, 1)

    def test_one(self):
        assert balanced_factor_pair(1) == (1, 1)

    @given(st.integers(1, 500))
    @settings(max_examples=100, deadline=None)
    def test_is_closest_factorization(self, k):
        h1, h2 = balanced_factor_pair(k)
        assert h1 * h2 == k
        gap = h1 - h2
        for a in range(1, int(math.isqrt(k)) + 1):
            if k % a == 0:
                assert abs(k // a - a) >= gap


class TestBalancedFactorization:
    def test_two_sets(self):
        assert balanced_factorization(36, 2) == (6, 6)

    def test_three_sets(self):
        assert balanced_factorization(64, 3) == (4, 4, 4)

    def test_awkward_value(self):
        factors = balanced_factorization(100, 3)
        assert np.prod(factors) == 100
        assert len(factors) == 3

    @given(st.integers(1, 200), st.integers(1, 4))
    @settings(max_examples=100, deadline=None)
    def test_product_preserved(self, k, p):
        factors = balanced_factorization(k, p)
        assert len(factors) == p
        assert int(np.prod(factors)) == k


class TestBudget:
    def test_paper_example_12_vectors(self):
        # Section 8: 12 vectors in 2 sets -> 36 centroids; in 3 sets -> 64.
        assert max_centroids_for_budget(12, 2) == 36
        assert max_centroids_for_budget(12, 3) == 64

    def test_indivisible_raises(self):
        with pytest.raises(ValidationError):
            max_centroids_for_budget(10, 3)

    def test_optimal_num_sets_12(self):
        # Divisors of 12 around 12/e ≈ 4.41 are 4 and 6: 3^4=81 > 2^6=64.
        assert optimal_num_sets(12) == 4

    def test_optimal_num_sets_6(self):
        # Divisors around 6/e ≈ 2.21 are 2 and 3: 3^2=9 > 2^3=8.
        assert optimal_num_sets(6) == 2

    @given(st.integers(2, 120))
    @settings(max_examples=100, deadline=None)
    def test_proposition_8_1(self, budget):
        """The returned p is optimal among ALL divisors of the budget."""
        best = optimal_num_sets(budget)
        best_value = max_centroids_for_budget(budget, best)
        for p in range(1, budget + 1):
            if budget % p == 0:
                assert max_centroids_for_budget(budget, p) <= best_value


class TestSetsBounds:
    def test_paper_style_example(self):
        lower, upper = sets_bounds_for_k(100, 10)
        assert lower == 2
        assert upper == 12

    def test_h_min_2(self):
        lower, upper = sets_bounds_for_k(8, 2)
        assert lower == 3  # log2(8) = 3
        assert upper == 8

    def test_h_min_must_exceed_one(self):
        with pytest.raises(ValidationError):
            sets_bounds_for_k(10, 1)

    @given(st.integers(2, 1000), st.integers(2, 10))
    @settings(max_examples=100, deadline=None)
    def test_proposition_8_2_consistency(self, k, h_min):
        lower, upper = sets_bounds_for_k(k, h_min)
        assert 1 <= lower <= upper
        # h_min^lower >= k must hold (lower bound definition).
        assert h_min**lower >= k or h_min**lower >= k - 1e-9
        # The construction in the proof: upper sets of >= h_min protocentroids
        # always cover k centroids via (h_min - 1) centroids per set.
        assert upper * (h_min - 1) >= k


class TestSuggestAggregator:
    def test_detects_additive_structure(self):
        rng = np.random.default_rng(0)
        t1 = rng.normal(size=(3, 5))
        t2 = rng.normal(size=(4, 5))
        grid = khatri_rao_combine([t1, t2], "sum")
        assert suggest_aggregator(grid, (3, 4)) == "sum"

    def test_detects_multiplicative_structure(self):
        rng = np.random.default_rng(1)
        t1 = rng.uniform(0.5, 4.0, size=(3, 5))
        t2 = rng.uniform(0.5, 4.0, size=(4, 5))
        grid = khatri_rao_combine([t1, t2], "product")
        assert suggest_aggregator(grid, (3, 4)) == "product"

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            suggest_aggregator(np.ones((5, 2)), (2, 3))

    @given(st.integers(0, 20))
    @settings(max_examples=20, deadline=None)
    def test_additive_grids_classified_additive(self, seed):
        rng = np.random.default_rng(seed)
        t1 = 3.0 * rng.normal(size=(3, 4))
        t2 = 3.0 * rng.normal(size=(3, 4))
        grid = khatri_rao_combine([t1, t2], "sum")
        assert suggest_aggregator(grid, (3, 3)) == "sum"
