"""(Re)generate the committed golden drift scenarios.

Run from the repository root::

    PYTHONPATH=src python tests/goldens/make_goldens.py

Every scenario is a deterministic function of hard-coded seeds, so
regeneration on an unchanged codebase reproduces the committed archives'
behavior exactly (the harness replays through the same code path the
recorder used).  Regenerating after an intentional behavior change is
how the pinned expectations are moved — the diff of this script plus the
refreshed ``.npz`` files *is* the review surface for that change.

Scenarios
---------
``stationary_f64_indexed_alert_only``
    A stationary identified float64 stream over a fixed 400-point pool:
    reassignment fractions decay as bounds settle, and after warmup the
    engine should stay (nearly) quiet — the negative control.
``meanshift_f64_indexed_refine``
    The same pool with a +5 mean shift injected from batch 10: inertia
    and reassignment alerts escalate to critical and the refine policy
    replays the triggering batch.
``meanshift_f32_anonymous_refit``
    A float32 *anonymous* stream (no point identities, fractions pinned
    at 1.0) with a late mean shift driving the seeded refit policy.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.datasets import make_blobs
from repro.monitoring import record_scenario

GOLDEN_DIR = Path(__file__).resolve().parent


def _stream(*, pool_seed, order_seed, n_pool=400, n_batches=16,
            batch_size=80, shift=0.0, shift_from=10, dtype=np.float64):
    """Deterministic batch stream over a fixed pool; returns (X, offsets, index)."""
    pool, _ = make_blobs(n_pool, n_clusters=9, random_state=pool_seed)
    pool = pool.astype(dtype)
    rng = np.random.default_rng(order_seed)
    rows, ids = [], []
    for t in range(n_batches):
        idx = rng.choice(n_pool, size=batch_size, replace=False)
        batch = pool[idx].copy()
        if shift and t >= shift_from:
            batch += dtype(shift)
        rows.append(batch)
        ids.append(idx.astype(np.int64))
    offsets = np.arange(0, n_batches * batch_size + 1, batch_size,
                        dtype=np.int64)
    return np.vstack(rows), offsets, np.concatenate(ids)


def build_all(out_dir=GOLDEN_DIR):
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []

    X, offsets, index = _stream(pool_seed=3, order_seed=5)
    written.append(record_scenario(
        out_dir / "stationary_f64_indexed_alert_only.npz",
        name="stationary_f64_indexed_alert_only",
        description="stationary identified f64 stream; bounds settle, "
                    "engine stays quiet after warmup (negative control)",
        model_config={"cardinalities": [3, 3], "random_state": 0},
        engine_config={"warmup_steps": 4, "reassignment_threshold": 0.75},
        policy_config={"name": "alert_only"},
        X=X, offsets=offsets, index=index,
    ))

    X, offsets, index = _stream(pool_seed=3, order_seed=5, shift=5.0)
    written.append(record_scenario(
        out_dir / "meanshift_f64_indexed_refine.npz",
        name="meanshift_f64_indexed_refine",
        description="+5 mean shift from batch 10 on an identified f64 "
                    "stream; critical alerts drive the refine policy",
        model_config={"cardinalities": [3, 3], "random_state": 0},
        engine_config={"warmup_steps": 4, "reassignment_threshold": 0.75,
                       "critical_factor": 1.5},
        policy_config={"name": "trigger_refine", "min_severity": "critical",
                       "cooldown": 4, "refine_steps": 2},
        X=X, offsets=offsets, index=index,
    ))

    X, offsets, _ = _stream(pool_seed=11, order_seed=13, shift=6.0,
                            shift_from=9, dtype=np.float32)
    written.append(record_scenario(
        out_dir / "meanshift_f32_anonymous_refit.npz",
        name="meanshift_f32_anonymous_refit",
        description="anonymous float32 stream with a +6 mean shift from "
                    "batch 9; the seeded refit policy re-seeds the model",
        model_config={"cardinalities": [3, 3], "dtype": "float32",
                      "random_state": 1},
        engine_config={"warmup_steps": 3, "critical_factor": 1.5},
        policy_config={"name": "trigger_refit", "min_severity": "critical",
                       "cooldown": 5, "seed": 7},
        X=X, offsets=offsets,
    ))
    return written


if __name__ == "__main__":
    for path in build_all():
        print(f"wrote {path}")
    sys.exit(0)
