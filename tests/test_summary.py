"""Tests for the portable DataSummary artifact."""

import json
import zipfile

import numpy as np
import pytest

from repro import DataSummary, KhatriRaoKMeans, KMeans, summarize
from repro.datasets import make_blobs
from repro.exceptions import SummaryFormatError, ValidationError
from repro.linalg import khatri_rao_combine


@pytest.fixture(scope="module")
def fitted_models():
    X, y = make_blobs(300, n_clusters=9, random_state=0)
    kr = KhatriRaoKMeans((3, 3), n_init=5, random_state=0).fit(X)
    km = KMeans(9, n_init=5, random_state=0).fit(X)
    return X, kr, km


class TestConstruction:
    def test_properties(self):
        rng = np.random.default_rng(0)
        summary = DataSummary([rng.normal(size=(3, 4)), rng.normal(size=(2, 4))])
        assert summary.cardinalities == (3, 2)
        assert summary.n_clusters == 6
        assert summary.stored_vectors == 5
        assert summary.n_features == 4
        assert summary.parameter_count == 20
        assert summary.compression_ratio() == pytest.approx(5 / 6)

    def test_centroids_match_combine(self):
        rng = np.random.default_rng(1)
        thetas = [rng.normal(size=(2, 3)), rng.normal(size=(3, 3))]
        summary = DataSummary(thetas, aggregator_name="product")
        np.testing.assert_allclose(
            summary.centroids(), khatri_rao_combine(thetas, "product")
        )

    def test_empty_sets_rejected(self):
        with pytest.raises(ValidationError):
            DataSummary([])

    def test_mismatched_features_rejected(self):
        with pytest.raises(ValidationError):
            DataSummary([np.ones((2, 3)), np.ones((2, 4))])

    def test_bad_aggregator_rejected(self):
        with pytest.raises(ValidationError):
            DataSummary([np.ones((2, 3))], aggregator_name="median")


class TestBehavior:
    def test_assign_and_inertia(self, fitted_models):
        X, kr, _ = fitted_models
        summary = summarize(kr)
        labels = summary.assign(X)
        np.testing.assert_array_equal(labels, kr.labels_)
        assert summary.inertia(X) == pytest.approx(kr.inertia_)

    def test_assign_feature_mismatch(self, fitted_models):
        _, kr, _ = fitted_models
        with pytest.raises(ValidationError):
            summarize(kr).assign(np.ones((2, 7)))

    def test_report_contains_key_facts(self, fitted_models):
        _, kr, _ = fitted_models
        report = summarize(kr, metadata={"dataset": "blobs"}).report()
        assert "9 clusters" in report
        assert "(3, 3)" in report
        assert "blobs" in report


class TestSummarize:
    def test_from_kr_model(self, fitted_models):
        _, kr, _ = fitted_models
        summary = summarize(kr)
        assert summary.cardinalities == (3, 3)
        assert summary.aggregator_name == "sum"
        assert summary.metadata["algorithm"] == "KhatriRaoKMeans"
        assert summary.metadata["inertia"] == pytest.approx(kr.inertia_)

    def test_from_kmeans_model(self, fitted_models):
        _, _, km = fitted_models
        summary = summarize(km)
        assert summary.cardinalities == (9,)
        assert summary.n_clusters == 9

    def test_unfitted_model_rejected(self):
        with pytest.raises(ValidationError):
            summarize(KMeans(3))

    def test_copies_are_independent(self, fitted_models):
        _, kr, _ = fitted_models
        summary = summarize(kr)
        summary.protocentroids[0][0, 0] += 100.0
        assert kr.protocentroids_[0][0, 0] != summary.protocentroids[0][0, 0]


class TestPersistence:
    def test_roundtrip(self, fitted_models, tmp_path):
        X, kr, _ = fitted_models
        summary = summarize(kr, metadata={"dataset": "blobs", "note": "test"})
        path = summary.save(tmp_path / "summary.npz")
        loaded = DataSummary.load(path)
        assert loaded.cardinalities == summary.cardinalities
        assert loaded.aggregator_name == summary.aggregator_name
        assert loaded.metadata["note"] == "test"
        np.testing.assert_allclose(loaded.centroids(), summary.centroids())
        np.testing.assert_array_equal(loaded.assign(X), summary.assign(X))

    def test_save_appends_extension(self, fitted_models, tmp_path):
        _, kr, _ = fitted_models
        path = summarize(kr).save(tmp_path / "summary")
        assert path.suffix == ".npz"
        assert DataSummary.load(path).n_clusters == 9

    def test_load_rejects_foreign_archives(self, tmp_path):
        foreign = tmp_path / "foreign.npz"
        np.savez(foreign, data=np.ones(3))
        with pytest.raises(ValidationError):
            DataSummary.load(foreign)


def _tampered_save(tmp_path, summary, *, header_patch=None, drop=(),
                   replace_arrays=None, raw_header=None):
    """Write ``summary`` as save() would, with targeted corruption."""
    header = {
        "format_version": 1,
        "aggregator": summary.aggregator_name,
        "num_sets": len(summary.protocentroids),
        "cardinalities": list(summary.cardinalities),
        "n_features": summary.n_features,
        "dtype": summary.dtype.name,
        "metadata": summary.metadata,
    }
    if header_patch:
        header.update(header_patch)
    arrays = {
        f"protocentroids_{q}": theta
        for q, theta in enumerate(summary.protocentroids)
        if f"protocentroids_{q}" not in drop
    }
    if replace_arrays:
        arrays.update(replace_arrays)
    encoded = raw_header if raw_header is not None else json.dumps(header).encode()
    path = tmp_path / "tampered.npz"
    np.savez(path, header=np.frombuffer(encoded, dtype=np.uint8), **arrays)
    return path


class TestLoadHardening:
    """Malformed archives must raise SummaryFormatError naming the field —
    never a bare KeyError/ValueError out of the npz machinery."""

    @pytest.fixture
    def summary(self):
        rng = np.random.default_rng(0)
        return DataSummary(
            [rng.normal(size=(3, 4)), rng.normal(size=(2, 4))],
            metadata={"origin": "test"},
        )

    def test_truncated_file(self, summary, tmp_path):
        path = summary.save(tmp_path / "model.npz")
        blob = path.read_bytes()
        truncated = tmp_path / "truncated.npz"
        truncated.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(SummaryFormatError, match="not a readable"):
            DataSummary.load(truncated)

    def test_not_a_zip(self, tmp_path):
        path = tmp_path / "noise.npz"
        path.write_bytes(b"\x00\x01\x02 definitely not a zip")
        with pytest.raises(SummaryFormatError):
            DataSummary.load(path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DataSummary.load(tmp_path / "nope.npz")

    def test_missing_header_names_field(self, tmp_path):
        path = tmp_path / "headerless.npz"
        np.savez(path, protocentroids_0=np.ones((2, 3)))
        with pytest.raises(SummaryFormatError) as excinfo:
            DataSummary.load(path)
        assert excinfo.value.field == "header"

    def test_unparseable_header(self, summary, tmp_path):
        path = _tampered_save(tmp_path, summary, raw_header=b"{broken json")
        with pytest.raises(SummaryFormatError) as excinfo:
            DataSummary.load(path)
        assert excinfo.value.field == "header"

    def test_wrong_format_version(self, summary, tmp_path):
        path = _tampered_save(
            tmp_path, summary, header_patch={"format_version": 99}
        )
        with pytest.raises(SummaryFormatError) as excinfo:
            DataSummary.load(path)
        assert excinfo.value.field == "format_version"

    def test_bad_num_sets(self, summary, tmp_path):
        path = _tampered_save(
            tmp_path, summary, header_patch={"num_sets": "two"}
        )
        with pytest.raises(SummaryFormatError) as excinfo:
            DataSummary.load(path)
        assert excinfo.value.field == "num_sets"

    def test_missing_protocentroid_set_names_key(self, summary, tmp_path):
        path = _tampered_save(tmp_path, summary, drop=("protocentroids_1",))
        with pytest.raises(SummaryFormatError, match="missing protocentroid set 1") as excinfo:
            DataSummary.load(path)
        assert excinfo.value.field == "protocentroids_1"

    def test_wrong_dtype_names_key(self, summary, tmp_path):
        path = _tampered_save(
            tmp_path, summary,
            replace_arrays={"protocentroids_1": np.ones((2, 4), dtype=np.int64)},
        )
        with pytest.raises(SummaryFormatError, match="int64") as excinfo:
            DataSummary.load(path)
        assert excinfo.value.field == "protocentroids_1"

    def test_wrong_ndim_names_key(self, summary, tmp_path):
        path = _tampered_save(
            tmp_path, summary,
            replace_arrays={"protocentroids_0": np.ones(4)},
        )
        with pytest.raises(SummaryFormatError) as excinfo:
            DataSummary.load(path)
        assert excinfo.value.field == "protocentroids_0"

    def test_mismatched_cardinalities_against_header(self, summary, tmp_path):
        path = _tampered_save(
            tmp_path, summary,
            replace_arrays={"protocentroids_0": np.ones((5, 4))},
        )
        with pytest.raises(SummaryFormatError, match="cardinalities") as excinfo:
            DataSummary.load(path)
        assert excinfo.value.field == "cardinalities"

    def test_mismatched_n_features_between_sets(self, summary, tmp_path):
        # Consistent with the header's cardinalities but set 1 has the
        # wrong feature count: caught as a typed error either way.
        path = _tampered_save(
            tmp_path, summary,
            header_patch={"n_features": 4},
            replace_arrays={"protocentroids_1": np.ones((2, 7))},
        )
        with pytest.raises(SummaryFormatError):
            DataSummary.load(path)

    def test_mismatched_header_dtype(self, summary, tmp_path):
        path = _tampered_save(
            tmp_path, summary, header_patch={"dtype": "float32"}
        )
        with pytest.raises(SummaryFormatError, match="float32") as excinfo:
            DataSummary.load(path)
        assert excinfo.value.field == "dtype"

    def test_unknown_aggregator_is_typed(self, summary, tmp_path):
        path = _tampered_save(
            tmp_path, summary, header_patch={"aggregator": "median"}
        )
        with pytest.raises(SummaryFormatError, match="median"):
            DataSummary.load(path)

    def test_legacy_archive_without_redundant_header_loads(self, summary, tmp_path):
        """Pre-hardening archives (no cardinalities/n_features/dtype in the
        header) must keep loading: the cross-checks are opt-in by key."""
        header = {
            "format_version": 1,
            "aggregator": "sum",
            "num_sets": 2,
            "metadata": {},
        }
        path = tmp_path / "legacy.npz"
        np.savez(
            path,
            header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
            protocentroids_0=summary.protocentroids[0],
            protocentroids_1=summary.protocentroids[1],
        )
        loaded = DataSummary.load(path)
        assert loaded.cardinalities == summary.cardinalities

    def test_every_error_is_also_validation_error(self, summary, tmp_path):
        """SummaryFormatError must stay catchable as ValidationError so the
        pre-hardening call sites keep working."""
        path = _tampered_save(
            tmp_path, summary, header_patch={"format_version": 99}
        )
        with pytest.raises(ValidationError):
            DataSummary.load(path)

    def test_zip_of_wrong_members(self, tmp_path):
        path = tmp_path / "odd.npz"
        with zipfile.ZipFile(path, "w") as zf:
            zf.writestr("readme.txt", "hello")
        with pytest.raises(SummaryFormatError):
            DataSummary.load(path)
