"""Tests for the portable DataSummary artifact."""

import numpy as np
import pytest

from repro import DataSummary, KhatriRaoKMeans, KMeans, summarize
from repro.datasets import make_blobs
from repro.exceptions import ValidationError
from repro.linalg import khatri_rao_combine


@pytest.fixture(scope="module")
def fitted_models():
    X, y = make_blobs(300, n_clusters=9, random_state=0)
    kr = KhatriRaoKMeans((3, 3), n_init=5, random_state=0).fit(X)
    km = KMeans(9, n_init=5, random_state=0).fit(X)
    return X, kr, km


class TestConstruction:
    def test_properties(self):
        rng = np.random.default_rng(0)
        summary = DataSummary([rng.normal(size=(3, 4)), rng.normal(size=(2, 4))])
        assert summary.cardinalities == (3, 2)
        assert summary.n_clusters == 6
        assert summary.stored_vectors == 5
        assert summary.n_features == 4
        assert summary.parameter_count == 20
        assert summary.compression_ratio() == pytest.approx(5 / 6)

    def test_centroids_match_combine(self):
        rng = np.random.default_rng(1)
        thetas = [rng.normal(size=(2, 3)), rng.normal(size=(3, 3))]
        summary = DataSummary(thetas, aggregator_name="product")
        np.testing.assert_allclose(
            summary.centroids(), khatri_rao_combine(thetas, "product")
        )

    def test_empty_sets_rejected(self):
        with pytest.raises(ValidationError):
            DataSummary([])

    def test_mismatched_features_rejected(self):
        with pytest.raises(ValidationError):
            DataSummary([np.ones((2, 3)), np.ones((2, 4))])

    def test_bad_aggregator_rejected(self):
        with pytest.raises(ValidationError):
            DataSummary([np.ones((2, 3))], aggregator_name="median")


class TestBehavior:
    def test_assign_and_inertia(self, fitted_models):
        X, kr, _ = fitted_models
        summary = summarize(kr)
        labels = summary.assign(X)
        np.testing.assert_array_equal(labels, kr.labels_)
        assert summary.inertia(X) == pytest.approx(kr.inertia_)

    def test_assign_feature_mismatch(self, fitted_models):
        _, kr, _ = fitted_models
        with pytest.raises(ValidationError):
            summarize(kr).assign(np.ones((2, 7)))

    def test_report_contains_key_facts(self, fitted_models):
        _, kr, _ = fitted_models
        report = summarize(kr, metadata={"dataset": "blobs"}).report()
        assert "9 clusters" in report
        assert "(3, 3)" in report
        assert "blobs" in report


class TestSummarize:
    def test_from_kr_model(self, fitted_models):
        _, kr, _ = fitted_models
        summary = summarize(kr)
        assert summary.cardinalities == (3, 3)
        assert summary.aggregator_name == "sum"
        assert summary.metadata["algorithm"] == "KhatriRaoKMeans"
        assert summary.metadata["inertia"] == pytest.approx(kr.inertia_)

    def test_from_kmeans_model(self, fitted_models):
        _, _, km = fitted_models
        summary = summarize(km)
        assert summary.cardinalities == (9,)
        assert summary.n_clusters == 9

    def test_unfitted_model_rejected(self):
        with pytest.raises(ValidationError):
            summarize(KMeans(3))

    def test_copies_are_independent(self, fitted_models):
        _, kr, _ = fitted_models
        summary = summarize(kr)
        summary.protocentroids[0][0, 0] += 100.0
        assert kr.protocentroids_[0][0, 0] != summary.protocentroids[0][0, 0]


class TestPersistence:
    def test_roundtrip(self, fitted_models, tmp_path):
        X, kr, _ = fitted_models
        summary = summarize(kr, metadata={"dataset": "blobs", "note": "test"})
        path = summary.save(tmp_path / "summary.npz")
        loaded = DataSummary.load(path)
        assert loaded.cardinalities == summary.cardinalities
        assert loaded.aggregator_name == summary.aggregator_name
        assert loaded.metadata["note"] == "test"
        np.testing.assert_allclose(loaded.centroids(), summary.centroids())
        np.testing.assert_array_equal(loaded.assign(X), summary.assign(X))

    def test_save_appends_extension(self, fitted_models, tmp_path):
        _, kr, _ = fitted_models
        path = summarize(kr).save(tmp_path / "summary")
        assert path.suffix == ".npz"
        assert DataSummary.load(path).n_clusters == 9

    def test_load_rejects_foreign_archives(self, tmp_path):
        foreign = tmp_path / "foreign.npz"
        np.savez(foreign, data=np.ones(3))
        with pytest.raises(ValidationError):
            DataSummary.load(foreign)
