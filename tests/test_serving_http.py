"""HTTP front-end tests: endpoints, request IDs, rate limiting, errors.

Each test class gets a real ``ServingServer`` on an ephemeral port and
talks to it over loopback HTTP with urllib — the same path a production
client takes, including the JSON envelopes and headers.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import KhatriRaoKMeans, summarize
from repro.datasets import make_blobs
from repro.serving import ModelRegistry, create_server
from repro.serving.http import STATUS_BY_EXCEPTION, EndpointNotFoundError
from repro.exceptions import (
    BatcherStoppedError,
    ModelNotFoundError,
    RateLimitError,
    SummaryFormatError,
    ValidationError,
)


@pytest.fixture(scope="module")
def data_and_summary():
    X, _ = make_blobs(300, n_clusters=9, random_state=0)
    model = KhatriRaoKMeans((3, 3), n_init=2, random_state=0).fit(X)
    return X, summarize(model, metadata={"dataset": "blobs"})


@pytest.fixture
def server(data_and_summary):
    _, summary = data_and_summary
    registry = ModelRegistry()
    registry.register("blobs", summary)
    server = create_server(
        registry, window_s=0.002, log_requests=False
    ).start()
    yield server
    server.stop()


def get(server, path, headers=None):
    req = urllib.request.Request(server.url + path, headers=headers or {})
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, dict(resp.headers), json.load(resp)


def post(server, path, payload, headers=None):
    req = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, dict(resp.headers), json.load(resp)


def post_error(server, path, payload=None, method="POST"):
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(server.url + path, data=data, method=method)
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(req, timeout=10)
    err = excinfo.value
    return err.code, dict(err.headers), json.load(err)


class TestEndpoints:
    def test_healthz(self, server):
        status, _, body = get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["models"] == 1
        assert body["batcher_running"] is True
        assert body["uptime_seconds"] >= 0

    def test_list_and_describe_models(self, server):
        _, _, listing = get(server, "/v1/models")
        assert [m["name"] for m in listing["models"]] == ["blobs"]
        _, _, info = get(server, "/v1/models/blobs")
        assert info["n_clusters"] == 9
        assert info["dtype"] == "float32"
        assert info["metadata"]["dataset"] == "blobs"

    def test_assign_matches_kernel(self, server, data_and_summary):
        X, _ = data_and_summary
        status, _, body = post(
            server, "/v1/models/blobs/assign", {"rows": X[:8].tolist()}
        )
        assert status == 200
        expected = server.registry.get("blobs").assign(X[:8])
        assert body["labels"] == expected.tolist()
        assert body["model"] == "blobs"

    def test_inertia(self, server, data_and_summary):
        X, _ = data_and_summary
        _, _, body = post(
            server, "/v1/models/blobs/inertia", {"rows": X[:8].tolist()}
        )
        assert body["rows"] == 8
        assert body["inertia"] == pytest.approx(
            server.registry.get("blobs").inertia(X[:8])
        )

    def test_refine(self, server, data_and_summary):
        X, _ = data_and_summary
        _, _, body = post(
            server,
            "/v1/models/blobs/refine",
            {"rows": X.tolist(), "n_steps": 2},
        )
        assert body["refined"] is True
        assert body["n_steps"] == 2
        assert body["rows"] == X.shape[0]

    def test_metrics_counts_traffic(self, server, data_and_summary):
        X, _ = data_and_summary
        post(server, "/v1/models/blobs/assign", {"rows": X[:4].tolist()})
        _, _, body = get(server, "/metrics")
        assert body["counters"]["requests_total"] >= 1
        assert body["counters"]["batches_total"] >= 1
        assert "assign" in body["latency_seconds"]
        assert "http" in body["latency_seconds"]
        for field in ("p50", "p95", "p99", "count"):
            assert field in body["latency_seconds"]["http"]


class TestRequestIDs:
    def test_generated_id_in_body_and_header(self, server):
        _, headers, body = get(server, "/healthz")
        assert body["request_id"].startswith("req-")
        assert headers["X-Request-ID"] == body["request_id"]

    def test_client_id_echoed(self, server):
        _, headers, body = get(
            server, "/healthz", headers={"X-Request-ID": "trace-42"}
        )
        assert body["request_id"] == "trace-42"
        assert headers["X-Request-ID"] == "trace-42"

    def test_error_responses_carry_id(self, server):
        status, headers, body = post_error(
            server, "/v1/models/ghost/assign", {"rows": [[0.0, 0.0]]}
        )
        assert status == 404
        assert headers["X-Request-ID"] == body["request_id"]


class TestErrorMapping:
    def test_unknown_model_404(self, server):
        status, _, body = post_error(
            server, "/v1/models/ghost/assign", {"rows": [[0.0, 0.0]]}
        )
        assert status == 404
        assert body["error"]["type"] == "ModelNotFoundError"
        assert "ghost" in body["error"]["message"]

    def test_unknown_endpoint_404(self, server):
        status, _, body = post_error(server, "/v1/frobnicate", {"x": 1})
        assert status == 404
        assert body["error"]["type"] == "EndpointNotFoundError"

    def test_validation_error_400(self, server):
        status, _, body = post_error(
            server, "/v1/models/blobs/assign", {"rows": [[1.0, 2.0, 3.0]]}
        )
        assert status == 400
        assert body["error"]["type"] == "ValidationError"
        assert "features" in body["error"]["message"]

    def test_missing_rows_400(self, server):
        status, _, body = post_error(
            server, "/v1/models/blobs/assign", {"data": []}
        )
        assert status == 400
        assert "rows" in body["error"]["message"]

    def test_malformed_json_400(self, server):
        req = urllib.request.Request(
            server.url + "/v1/models/blobs/assign",
            data=b"{not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400

    def test_get_on_scoring_endpoint_404(self, server):
        status, _, _ = post_error(
            server, "/v1/models/blobs/assign", method="GET"
        )
        assert status == 404

    def test_status_table_is_ordered_most_specific_first(self):
        # Every subclass appears before its base so isinstance dispatch
        # can walk the table linearly.
        types = [t for t, _ in STATUS_BY_EXCEPTION]
        for i, exc_type in enumerate(types):
            for later in types[i + 1:]:
                assert not issubclass(later, exc_type) or later is exc_type, (
                    f"{later.__name__} is shadowed by {exc_type.__name__}"
                )

    def test_status_codes(self):
        mapping = dict(STATUS_BY_EXCEPTION)
        assert mapping[ModelNotFoundError] == 404
        assert mapping[EndpointNotFoundError] == 404
        assert mapping[RateLimitError] == 429
        assert mapping[BatcherStoppedError] == 503
        assert mapping[ValidationError] == 400
        # SummaryFormatError rides the ValidationError row.
        assert issubclass(SummaryFormatError, ValidationError)


class TestRateLimiting:
    def test_bucket_exhaustion_gives_429_with_retry_after(self, data_and_summary):
        _, summary = data_and_summary
        registry = ModelRegistry()
        registry.register("blobs", summary)
        server = create_server(
            registry, rate_limit=1e-3, burst=2, log_requests=False
        ).start()
        try:
            rows = {"rows": [[0.0, 0.0]]}
            post(server, "/v1/models/blobs/assign", rows)
            post(server, "/v1/models/blobs/assign", rows)
            status, headers, body = post_error(
                server, "/v1/models/blobs/assign", rows
            )
            assert status == 429
            assert body["error"]["type"] == "RateLimitError"
            assert float(headers["Retry-After"]) > 0
            # Probes stay unthrottled.
            assert get(server, "/healthz")[0] == 200
            assert get(server, "/metrics")[0] == 200
            assert server.metrics.counter("rate_limited_total") == 1
        finally:
            server.stop()


class TestLifecycle:
    def test_port_zero_binds_ephemeral(self, server):
        assert server.server_address[1] > 0
        assert str(server.server_address[1]) in server.url

    def test_stop_is_idempotent_for_batcher(self, data_and_summary):
        _, summary = data_and_summary
        registry = ModelRegistry()
        registry.register("m", summary)
        server = create_server(registry, log_requests=False).start()
        server.stop()
        assert server.batcher.running is False
