"""Packaging sanity: the sdist/wheel must ship every subpackage.

``setup.py`` declares ``find_packages("src")``; these tests pin what that
resolves to, so adding a package directory without an ``__init__.py`` (it
would silently vanish from an sdist) or breaking the src layout fails the
suite instead of shipping a broken artifact.
"""

from pathlib import Path

import pytest

setuptools = pytest.importorskip("setuptools")

_REPO_ROOT = Path(__file__).resolve().parents[1]
_SRC = _REPO_ROOT / "src"


def test_find_packages_includes_every_source_directory():
    found = set(setuptools.find_packages(str(_SRC)))
    expected = {
        str(path.parent.relative_to(_SRC)).replace("/", ".")
        for path in _SRC.glob("repro/**/__init__.py")
    } | {"repro"}
    assert found == expected


def test_serving_subpackage_is_picked_up():
    found = set(setuptools.find_packages(str(_SRC)))
    assert "repro.serving" in found


def test_runtime_subpackage_is_picked_up():
    found = set(setuptools.find_packages(str(_SRC)))
    assert "repro.runtime" in found


def test_no_orphan_modules_outside_a_package():
    """Every .py under src/ must live in a directory with __init__.py —
    otherwise find_packages would drop it from the distribution."""
    orphans = [
        str(path.relative_to(_SRC))
        for path in _SRC.rglob("*.py")
        if not (path.parent / "__init__.py").exists()
    ]
    assert not orphans, f"modules outside any package: {orphans}"


def test_setup_py_declares_src_layout():
    text = (_REPO_ROOT / "setup.py").read_text(encoding="utf-8")
    assert 'package_dir={"": "src"}' in text
    assert 'find_packages("src")' in text
