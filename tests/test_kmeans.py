"""Tests for the standard k-Means baseline."""

import numpy as np
import pytest

from repro import KMeans
from repro.core.kmeans import kmeans_plus_plus_init
from repro.exceptions import NotFittedError, ValidationError
from repro.metrics import adjusted_rand_index, inertia


class TestKMeansPlusPlus:
    def test_shapes(self, blobs_small):
        X, _ = blobs_small
        centers = kmeans_plus_plus_init(X, 4, np.random.default_rng(0))
        assert centers.shape == (4, 2)

    def test_centers_are_data_points(self, blobs_small):
        X, _ = blobs_small
        centers = kmeans_plus_plus_init(X, 3, np.random.default_rng(1))
        for center in centers:
            assert np.any(np.all(np.isclose(X, center), axis=1))

    def test_spreads_over_clusters(self, blobs_small):
        X, y = blobs_small
        centers = kmeans_plus_plus_init(X, 4, np.random.default_rng(2))
        # With well-separated blobs, ++ should hit all 4 clusters.
        from repro.core._distances import assign_to_nearest

        labels, _ = assign_to_nearest(X, centers)
        assert len(np.unique(labels)) == 4

    def test_too_many_clusters(self):
        with pytest.raises(ValidationError):
            kmeans_plus_plus_init(np.ones((3, 2)), 5, np.random.default_rng(0))

    def test_degenerate_identical_points(self):
        X = np.ones((10, 2))
        centers = kmeans_plus_plus_init(X, 3, np.random.default_rng(0))
        assert centers.shape == (3, 2)


class TestKMeans:
    def test_recovers_separated_blobs(self, blobs_small):
        X, y = blobs_small
        model = KMeans(4, n_init=5, random_state=0).fit(X)
        assert adjusted_rand_index(y, model.labels_) == pytest.approx(1.0)

    def test_inertia_matches_metric(self, blobs_small):
        X, _ = blobs_small
        model = KMeans(4, n_init=3, random_state=0).fit(X)
        assert model.inertia_ == pytest.approx(
            inertia(X, model.labels_, model.cluster_centers_)
        )

    def test_more_clusters_lower_inertia(self, blobs_small):
        X, _ = blobs_small
        i2 = KMeans(2, n_init=5, random_state=0).fit(X).inertia_
        i4 = KMeans(4, n_init=5, random_state=0).fit(X).inertia_
        i8 = KMeans(8, n_init=5, random_state=0).fit(X).inertia_
        assert i8 < i4 < i2

    def test_reproducible_with_seed(self, blobs_small):
        X, _ = blobs_small
        a = KMeans(4, random_state=7).fit(X)
        b = KMeans(4, random_state=7).fit(X)
        np.testing.assert_array_equal(a.labels_, b.labels_)
        np.testing.assert_allclose(a.cluster_centers_, b.cluster_centers_)

    def test_random_init_works(self, blobs_small):
        X, y = blobs_small
        model = KMeans(4, init="random", n_init=10, random_state=0).fit(X)
        assert adjusted_rand_index(y, model.labels_) > 0.9

    def test_predict_consistent_with_labels(self, blobs_small):
        X, _ = blobs_small
        model = KMeans(4, random_state=0).fit(X)
        np.testing.assert_array_equal(model.predict(X), model.labels_)

    def test_predict_new_points(self, blobs_small):
        X, _ = blobs_small
        model = KMeans(4, random_state=0).fit(X)
        nearest = model.predict(model.cluster_centers_)
        np.testing.assert_array_equal(nearest, np.arange(4))

    def test_transform_shape(self, blobs_small):
        X, _ = blobs_small
        model = KMeans(4, random_state=0).fit(X)
        assert model.transform(X).shape == (X.shape[0], 4)

    def test_score_is_negative_inertia(self, blobs_small):
        X, _ = blobs_small
        model = KMeans(4, random_state=0).fit(X)
        assert model.score(X) == pytest.approx(-model.inertia_)

    def test_fit_predict(self, blobs_small):
        X, _ = blobs_small
        labels = KMeans(4, random_state=0).fit_predict(X)
        assert labels.shape == (X.shape[0],)

    def test_parameter_count(self, blobs_small):
        X, _ = blobs_small
        model = KMeans(4, random_state=0).fit(X)
        assert model.parameter_count() == 4 * 2

    def test_not_fitted_errors(self):
        model = KMeans(3)
        for method in ("predict", "transform", "score"):
            with pytest.raises(NotFittedError):
                getattr(model, method)(np.ones((2, 2)))
        with pytest.raises(NotFittedError):
            model.parameter_count()

    def test_feature_mismatch_on_predict(self, blobs_small):
        X, _ = blobs_small
        model = KMeans(4, random_state=0).fit(X)
        with pytest.raises(ValidationError):
            model.predict(np.ones((2, 5)))

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            KMeans(0)
        with pytest.raises(ValidationError):
            KMeans(2, init="bogus")
        with pytest.raises(ValidationError):
            KMeans(2, n_init=0)

    def test_k_equals_n(self):
        X = np.arange(8.0).reshape(4, 2)
        model = KMeans(4, n_init=2, random_state=0).fit(X)
        assert model.inertia_ == pytest.approx(0.0)

    def test_single_cluster(self, blobs_small):
        X, _ = blobs_small
        model = KMeans(1, n_init=1, random_state=0).fit(X)
        np.testing.assert_allclose(model.cluster_centers_[0], X.mean(axis=0))

    def test_handles_duplicate_points(self):
        X = np.vstack([np.zeros((10, 2)), np.ones((10, 2))])
        model = KMeans(2, n_init=3, random_state=0).fit(X)
        assert model.inertia_ == pytest.approx(0.0)

    def test_empty_cluster_reseeding(self):
        # Three far-apart groups, k=3, adversarial initialization is handled
        # by the farthest-point re-seeding.
        rng = np.random.default_rng(0)
        X = np.vstack(
            [
                rng.normal(0, 0.01, (20, 2)),
                rng.normal(5, 0.01, (20, 2)) + [5, 0],
                rng.normal(0, 0.01, (20, 2)) + [0, 50],
            ]
        )
        model = KMeans(3, n_init=10, random_state=1).fit(X)
        assert len(np.unique(model.labels_)) == 3
