"""Integration tests for DKM/IDEC and their Khatri-Rao variants."""

import numpy as np
import pytest

from repro.datasets import make_blobs
from repro.deep import DKM, IDEC, KhatriRaoDKM, KhatriRaoIDEC, fit_compressed_autoencoder
from repro.deep.compression import default_ranks
from repro.exceptions import NotFittedError, ValidationError
from repro.metrics import unsupervised_clustering_accuracy as acc

FAST = dict(hidden_dims=(32, 8), pretrain_epochs=4, clustering_epochs=4,
            batch_size=128, kmeans_n_init=3)


@pytest.fixture(scope="module")
def deep_blobs():
    return make_blobs(300, n_features=16, n_clusters=4, cluster_std=0.5,
                      random_state=0)


class TestDKM:
    def test_fit_recovers_blobs(self, deep_blobs):
        X, y = deep_blobs
        model = DKM(4, random_state=0, **FAST).fit(X)
        assert acc(y, model.labels_) > 0.9

    def test_attributes(self, deep_blobs):
        X, _ = deep_blobs
        model = DKM(4, random_state=0, **FAST).fit(X)
        assert model.centroids().shape == (4, 8)
        assert model.labels_.shape == (X.shape[0],)
        assert np.isfinite(model.inertia_)
        assert len(model.pretrain_loss_) == FAST["pretrain_epochs"]
        assert len(model.clustering_loss_) == FAST["clustering_epochs"]

    def test_predict_matches_labels(self, deep_blobs):
        X, _ = deep_blobs
        model = DKM(4, random_state=0, **FAST).fit(X)
        np.testing.assert_array_equal(model.predict(X), model.labels_)

    def test_transform_shape(self, deep_blobs):
        X, _ = deep_blobs
        model = DKM(4, random_state=0, **FAST).fit(X)
        assert model.transform(X).shape == (X.shape[0], 8)

    def test_not_fitted(self):
        model = DKM(3, **FAST)
        with pytest.raises(NotFittedError):
            model.predict(np.ones((2, 2)))
        with pytest.raises(NotFittedError):
            model.centroids()

    def test_result_bundle(self, deep_blobs):
        X, _ = deep_blobs
        model = DKM(4, random_state=0, **FAST).fit(X)
        result = model.result()
        assert result.parameter_ratio == pytest.approx(1.0)
        assert result.labels.shape == (X.shape[0],)


class TestKhatriRaoDKM:
    def test_fit_and_compression(self, deep_blobs):
        X, y = deep_blobs
        model = KhatriRaoDKM((2, 2), random_state=0, **FAST).fit(X)
        assert model.n_clusters == 4
        assert model.centroids().shape == (4, 8)
        assert acc(y, model.labels_) > 0.7
        # The KR variant must store fewer parameters than its dense bound.
        assert model.result().parameter_ratio < 1.0

    def test_protocentroid_parameters_trained(self, deep_blobs):
        X, _ = deep_blobs
        model = KhatriRaoDKM((2, 2), random_state=0, **FAST).fit(X)
        assert len(model.centroid_params_) == 2
        assert model.centroid_params_[0].shape == (2, 8)

    def test_without_autoencoder_compression(self, deep_blobs):
        X, _ = deep_blobs
        model = KhatriRaoDKM(
            (2, 2), compress_autoencoder=False, random_state=0, **FAST
        ).fit(X)
        assert np.isfinite(model.inertia_)

    def test_product_aggregator(self, deep_blobs):
        X, _ = deep_blobs
        model = KhatriRaoDKM(
            (2, 2), aggregator="product", compress_autoencoder=False,
            random_state=0, **FAST,
        ).fit(X)
        assert np.isfinite(model.inertia_)

    def test_mutually_exclusive_cluster_specs(self):
        with pytest.raises(ValidationError):
            DKM.__bases__[0](n_clusters=4, cardinalities=(2, 2))
        with pytest.raises(ValidationError):
            DKM.__bases__[0]()


class TestIDECVariants:
    def test_idec_recovers_blobs(self, deep_blobs):
        X, y = deep_blobs
        model = IDEC(4, random_state=0, **FAST).fit(X)
        assert acc(y, model.labels_) > 0.9

    def test_kr_idec(self, deep_blobs):
        X, y = deep_blobs
        model = KhatriRaoIDEC((2, 2), random_state=0, **FAST).fit(X)
        assert acc(y, model.labels_) > 0.7
        assert model.result().parameter_ratio < 1.0

    def test_fit_predict(self, deep_blobs):
        X, _ = deep_blobs
        labels = IDEC(4, random_state=0, **FAST).fit_predict(X)
        assert labels.shape == (X.shape[0],)


class TestCompressedAutoencoder:
    def test_default_ranks_cap_at_compression(self):
        ranks = default_ranks(100, (20, 5), base_rank=10)
        dims = [100, 20, 5]
        for i, rank in enumerate(ranks):
            d, m = dims[i], dims[i + 1]
            assert 2 * rank * (d + m) <= d * m or rank == 1

    def test_fit_compressed_returns_working_model(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(150, 24))
        ae, history = fit_compressed_autoencoder(
            X, hidden_dims=(16, 4), epochs=4, batch_size=64,
            max_rank_multiplier=2, random_state=0,
        )
        assert ae.transform(X).shape == (150, 4)
        assert len(history) >= 4
        assert np.isfinite(ae.reconstruction_loss(X))

    def test_accepts_provided_dense_reference(self):
        from repro.nn import build_autoencoder

        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 12))
        dense = build_autoencoder(12, (8, 3), random_state=0)
        dense.pretrain(X, epochs=3, batch_size=50, random_state=0)
        ae, _ = fit_compressed_autoencoder(
            X, hidden_dims=(8, 3), epochs=3, batch_size=50,
            max_rank_multiplier=1, dense_reference=dense, random_state=0,
        )
        assert ae is not None
