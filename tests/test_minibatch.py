"""Tests for mini-batch Khatri-Rao-k-Means."""

import numpy as np
import pytest

from repro import KhatriRaoKMeans, MiniBatchKhatriRaoKMeans
from repro.datasets import make_blobs, make_khatri_rao_blobs
from repro.exceptions import NotFittedError, ValidationError
from repro.metrics import adjusted_rand_index


class TestMiniBatch:
    def test_fit_shapes(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        model = MiniBatchKhatriRaoKMeans((3, 3), batch_size=32, max_steps=50,
                                         random_state=0).fit(X)
        assert model.centroids().shape == (9, 2)
        assert model.labels_.shape == (X.shape[0],)
        assert np.isfinite(model.inertia_)
        assert model.parameter_count() == 6 * 2
        assert model.n_clusters == 9

    def test_recovers_structured_data(self):
        X, y, _ = make_khatri_rao_blobs((3, 3), n_samples=600, aggregator="sum",
                                        cluster_std=0.05, random_state=1)
        best = np.inf
        best_ari = 0.0
        for seed in range(8):
            model = MiniBatchKhatriRaoKMeans(
                (3, 3), batch_size=128, max_steps=100, random_state=seed
            ).fit(X)
            if model.inertia_ < best:
                best = model.inertia_
                best_ari = adjusted_rand_index(y, model.labels_)
        assert best_ari > 0.8

    def test_comparable_to_full_batch(self):
        X, _ = make_blobs(800, n_clusters=16, random_state=2)
        full = KhatriRaoKMeans((4, 4), n_init=5, random_state=0).fit(X)
        mini_inertias = [
            MiniBatchKhatriRaoKMeans((4, 4), batch_size=128, max_steps=150,
                                     random_state=seed).fit(X).inertia_
            for seed in range(5)
        ]
        assert min(mini_inertias) < 3.0 * full.inertia_

    def test_product_aggregator(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0.5, 3.0, size=(400, 3))
        model = MiniBatchKhatriRaoKMeans((2, 3), aggregator="product",
                                         batch_size=64, max_steps=60,
                                         random_state=0).fit(X)
        assert np.isfinite(model.inertia_)

    def test_partial_fit_streaming(self):
        X, _ = make_blobs(500, n_clusters=9, random_state=4)
        model = MiniBatchKhatriRaoKMeans((3, 3), batch_size=64, random_state=0)
        for start in range(0, 500, 100):
            model.partial_fit(X[start : start + 100])
        assert model.n_steps_ == 5
        labels = model.predict(X)
        assert labels.shape == (500,)

    def test_convergence_counter(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        model = MiniBatchKhatriRaoKMeans((3, 3), batch_size=64, max_steps=500,
                                         reassignment_tol=1e-2,
                                         random_state=0).fit(X)
        assert model.n_steps_ <= 500

    def test_not_fitted(self):
        model = MiniBatchKhatriRaoKMeans((2, 2))
        with pytest.raises(NotFittedError):
            model.predict(np.ones((2, 2)))
        with pytest.raises(NotFittedError):
            model.centroids()

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            MiniBatchKhatriRaoKMeans((2, 0))
        with pytest.raises(ValidationError):
            MiniBatchKhatriRaoKMeans((2, 2), batch_size=0)

    def test_single_set(self):
        X, _ = make_blobs(300, n_clusters=4, random_state=5)
        model = MiniBatchKhatriRaoKMeans((4,), batch_size=64, max_steps=80,
                                         random_state=0).fit(X)
        assert model.centroids().shape == (4, 2)
