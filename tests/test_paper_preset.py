"""Smoke tests at the paper's full architecture scale (construction only)."""

import numpy as np

from repro.autodiff import Tensor
from repro.nn import build_autoencoder
from repro.nn.autoencoder import PAPER_HIDDEN_DIMS


class TestPaperArchitecture:
    def test_dense_paper_autoencoder_builds_and_runs(self):
        ae = build_autoencoder(784, PAPER_HIDDEN_DIMS, random_state=0)
        out = ae.forward(Tensor(np.zeros((2, 784))))
        assert out.shape == (2, 784)
        assert ae.transform(np.zeros((2, 784))).shape == (2, 10)

    def test_compressed_paper_autoencoder_compression_ratio(self):
        """At the paper's 1024-512-256-10 scale the Hadamard-compressed inner
        layers dominate, giving a substantial parameter reduction even at the
        initial rank (the paper reports post-tuning ratios of 0.15-0.88
        including centroids)."""
        dense = build_autoencoder(784, PAPER_HIDDEN_DIMS, random_state=0)
        compressed = build_autoencoder(
            784, PAPER_HIDDEN_DIMS, compressed=True, random_state=0
        )
        ratio = compressed.parameter_count() / dense.parameter_count()
        assert ratio < 0.65
        # Boundary layers stay dense (Section 9.1), so the compressed model
        # still contains the full input/output projections.
        assert compressed.parameter_count() > 2 * 784 * PAPER_HIDDEN_DIMS[0]

    def test_compressed_forward_pass(self):
        compressed = build_autoencoder(
            784, PAPER_HIDDEN_DIMS, compressed=True, random_state=0
        )
        out = compressed.forward(Tensor(np.zeros((1, 784))))
        assert out.shape == (1, 784)
        assert np.all(np.isfinite(out.numpy()))
