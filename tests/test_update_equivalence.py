"""Equivalence harness certifying the contingency-table update kernel.

The factored update (:mod:`repro.core._update`) *reorders* the arithmetic of
Proposition 6.1 — grouped sums of ``x − rest`` become grouped sums of ``x``
minus contingency-table matmuls against the protocentroids — so it cannot be
bit-identical to the gather reference.  This harness certifies the change:

* kernel-level agreement within an **explicit error envelope** derived from
  the standard summation bound (error of a length-``K`` float64 reduction is
  at most ``K·eps`` times the sum of absolute terms), computed per
  protocentroid and feature from the same contingency tables;
* **bit-identical** trajectories wherever the arithmetic order is unchanged:
  the vectorized ``grouped_row_sum`` against its per-column reference, the
  product aggregator's transparent gather fallback, and the empty-cluster
  reseed draws (same weighted-mass test, same rng consumption, same order);
* full-fit equivalence across the update × assignment × aggregator ×
  weighted grid, plus hypothesis property runs on random shapes and
  cardinalities.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import KhatriRaoKMeans
from repro.core import (
    MiniBatchKhatriRaoKMeans,
    update_factored,
    update_gather,
    update_protocentroids,
)
from repro.core._factored import grouped_row_sum
from repro.core._update import (
    pair_count_tables,
    resolve_update,
    sum_sufficient_statistics,
)
from repro.exceptions import ValidationError
from repro.linalg import ProductAggregator, SumAggregator

EPS = np.finfo(float).eps

CARDINALITY_SETS = [(4,), (3, 5), (2, 3, 4), (5, 2), (2, 2, 2)]


def _random_problem(seed, cardinalities, n=60, m=5, weighted=False):
    rng = np.random.default_rng(seed)
    thetas = [rng.normal(size=(h, m)) for h in cardinalities]
    X = rng.normal(size=(n, m))
    flat = rng.integers(int(np.prod(cardinalities)), size=n)
    set_labels = np.stack(np.unravel_index(flat, cardinalities), axis=1)
    weights = rng.uniform(0.1, 3.0, size=n) if weighted else None
    return X, thetas, set_labels, weights


def _certified_envelope(X, thetas, set_labels, weights):
    """Per-set ``(h_q, m)`` error envelopes for factored-vs-gather numerators.

    Both numerators reduce the same ≤ ``n·(p+1)`` terms per protocentroid
    and feature, just in different orders; a float64 reduction of ``K``
    terms carries error ≤ ``K·eps·Σ|terms|``.  The absolute-term sums are
    computed with the kernels' own primitives (grouped sums of ``|w·x|``,
    contingency tables against ``|θ_r|``), and the divide by the weighted
    mass propagates the envelope to the updated protocentroids.
    """
    cardinalities = tuple(theta.shape[0] for theta in thetas)
    Xw_abs = np.abs(X) if weights is None else np.abs(X) * weights[:, None]
    tables = pair_count_tables(set_labels, cardinalities, weights)
    n = X.shape[0]
    p = len(thetas)
    envelopes = []
    for q, h in enumerate(cardinalities):
        abs_terms = grouped_row_sum(set_labels[:, q], Xw_abs, h)
        for r, theta in enumerate(thetas):
            if r != q:
                abs_terms = abs_terms + tables[q][r] @ np.abs(theta)
        envelopes.append(EPS * (n * p + sum(cardinalities) + 8) * abs_terms)
    return envelopes


class TestKernelEquivalence:
    @pytest.mark.parametrize("weighted", [False, True])
    @pytest.mark.parametrize("cardinalities", CARDINALITY_SETS)
    def test_factored_within_certified_envelope(self, cardinalities, weighted):
        X, thetas, set_labels, weights = _random_problem(
            3, cardinalities, weighted=weighted
        )
        gathered = update_gather(
            X, thetas, set_labels, "sum", np.random.default_rng(0), weights
        )
        factored = update_factored(
            X, thetas, set_labels, "sum", np.random.default_rng(0), weights
        )
        envelopes = _certified_envelope(X, thetas, set_labels, weights)
        mass = [
            np.bincount(set_labels[:, q], weights=weights, minlength=h)
            for q, h in enumerate(cardinalities)
        ]
        for q, (g, f) in enumerate(zip(gathered, factored)):
            non_empty = mass[q] > 0
            bound = envelopes[q][non_empty] / mass[q][non_empty, None]
            assert np.all(np.abs(g - f)[non_empty] <= bound + 1e-300), (
                f"set {q}: drift exceeds certified envelope"
            )

    @given(
        seed=st.integers(0, 1000),
        n=st.integers(5, 80),
        m=st.integers(1, 8),
        num_sets=st.integers(1, 3),
        weighted=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_random_shapes(self, seed, n, m, num_sets, weighted):
        rng = np.random.default_rng(seed)
        cardinalities = tuple(int(rng.integers(1, 6)) for _ in range(num_sets))
        X, thetas, set_labels, weights = _random_problem(
            seed, cardinalities, n=n, m=m, weighted=weighted
        )
        gathered = update_gather(
            X, thetas, set_labels, "sum", np.random.default_rng(seed), weights
        )
        factored = update_factored(
            X, thetas, set_labels, "sum", np.random.default_rng(seed), weights
        )
        envelopes = _certified_envelope(X, thetas, set_labels, weights)
        for q, h in enumerate(cardinalities):
            mass = np.bincount(set_labels[:, q], weights=weights, minlength=h)
            non_empty = mass > 0
            bound = envelopes[q][non_empty] / mass[non_empty, None]
            diff = np.abs(gathered[q] - factored[q])[non_empty]
            assert np.all(diff <= bound + 1e-300)
            # Empty protocentroids reseed identically (same rng draws).
            np.testing.assert_array_equal(
                gathered[q][~non_empty], factored[q][~non_empty]
            )

    def test_sum_update_formula_direct(self):
        # Proposition 6.1 ground truth on a tiny case, for both kernels:
        # set 0 is updated first, against the *original* set 1.
        X, thetas, set_labels, _ = _random_problem(11, (2, 3), n=30, m=2)
        for kernel in (update_gather, update_factored):
            updated = kernel(X, thetas, set_labels, "sum", np.random.default_rng(0))
            for j in range(2):
                mask = set_labels[:, 0] == j
                if not mask.any():
                    continue
                expected = np.mean(X[mask] - thetas[1][set_labels[mask, 1]], axis=0)
                np.testing.assert_allclose(updated[0][j], expected, atol=1e-12)

    def test_product_rejected_by_factored_kernel(self):
        X, thetas, set_labels, _ = _random_problem(5, (2, 2))
        with pytest.raises(ValidationError):
            update_factored(X, thetas, set_labels, "product")

    def test_dispatcher_falls_back_for_product(self):
        # update_protocentroids(factored=True) with the product aggregator
        # must produce the gather result bit for bit.
        rng = np.random.default_rng(7)
        X = np.abs(rng.normal(size=(40, 3))) + 0.5
        thetas = [np.abs(rng.normal(size=(2, 3))) + 0.5 for _ in range(2)]
        set_labels = np.stack(
            np.unravel_index(rng.integers(4, size=40), (2, 2)), axis=1
        )
        via_dispatch = update_protocentroids(
            X, thetas, set_labels, "product", np.random.default_rng(0),
            factored=True,
        )
        direct = update_gather(
            X, thetas, set_labels, "product", np.random.default_rng(0)
        )
        for a, b in zip(via_dispatch, direct):
            np.testing.assert_array_equal(a, b)

    def test_resolve_update(self):
        assert resolve_update("auto", "sum")
        assert resolve_update("factored", "sum")
        assert not resolve_update("gather", "sum")
        assert not resolve_update("auto", "product")
        assert not resolve_update("factored", "product")
        with pytest.raises(ValidationError):
            resolve_update("bogus", "sum")
        assert SumAggregator().supports_factored_update
        assert not ProductAggregator().supports_factored_update


class TestContingencyTables:
    @pytest.mark.parametrize("weighted", [False, True])
    def test_tables_match_dense_counts(self, weighted):
        X, _, set_labels, weights = _random_problem(
            9, (3, 4, 2), weighted=weighted
        )
        tables = pair_count_tables(set_labels, (3, 4, 2), weights)
        w = np.ones(X.shape[0]) if weights is None else weights
        for q, h_q in enumerate((3, 4, 2)):
            assert tables[q][q] is None
            for r, h_r in enumerate((3, 4, 2)):
                if q == r:
                    continue
                dense = np.zeros((h_q, h_r))
                for i in range(X.shape[0]):
                    dense[set_labels[i, q], set_labels[i, r]] += w[i]
                np.testing.assert_allclose(tables[q][r], dense, atol=1e-12)

    def test_sufficient_statistics_match_gather(self):
        # The single-set federated entry point equals the gather statistics.
        X, thetas, set_labels, weights = _random_problem(13, (3, 3), weighted=True)
        for q in range(2):
            numerator, mass = sum_sufficient_statistics(
                X, thetas, set_labels, q, weights
            )
            rest = thetas[1 - q][set_labels[:, 1 - q]]
            expected_num = grouped_row_sum(
                set_labels[:, q], (X - rest) * weights[:, None], 3
            )
            expected_mass = np.bincount(set_labels[:, q], weights=weights, minlength=3)
            np.testing.assert_allclose(numerator, expected_num, atol=1e-10)
            np.testing.assert_allclose(mass, expected_mass, atol=1e-12)


class TestGroupedRowSumVectorization:
    @given(
        seed=st.integers(0, 500),
        num_groups=st.integers(1, 9),
        n=st.integers(0, 60),
        m=st.integers(1, 7),
    )
    @settings(max_examples=40, deadline=None)
    def test_bit_identical_to_per_column_bincount(self, seed, num_groups, n, m):
        # The fused flat bincount accumulates every (group, column) bucket in
        # the same increasing-row order as the per-column loop it replaced —
        # exact equality, not allclose, so `update="gather"` stays
        # bit-identical to the seed arithmetic.
        rng = np.random.default_rng(seed)
        assignments = rng.integers(0, num_groups, size=n)
        values = rng.normal(size=(n, m))
        reference = np.empty((num_groups, m))
        for column in range(m):
            reference[:, column] = np.bincount(
                assignments, weights=values[:, column], minlength=num_groups
            )
        np.testing.assert_array_equal(
            grouped_row_sum(assignments, values, num_groups), reference
        )

    def test_non_contiguous_values(self):
        rng = np.random.default_rng(1)
        wide = rng.normal(size=(30, 8))
        view = wide[:, ::2]  # non-contiguous columns
        expected = np.zeros((3, 4))
        assignments = rng.integers(0, 3, size=30)
        np.add.at(expected, assignments, view)
        np.testing.assert_allclose(
            grouped_row_sum(assignments, view, 3), expected, atol=1e-12
        )


class TestReseedRegression:
    """Deterministic-rng coverage of the empty-cluster reseed path."""

    def _empty_group_problem(self):
        rng = np.random.default_rng(21)
        X = rng.normal(size=(50, 3))
        thetas = [rng.normal(size=(3, 3)), rng.normal(size=(2, 3))]
        flat = rng.integers(6, size=50)
        set_labels = np.stack(np.unravel_index(flat, (3, 2)), axis=1)
        set_labels[:, 0][set_labels[:, 0] == 1] = 2  # group 1 of set 0: empty
        return X, thetas, set_labels

    @pytest.mark.parametrize("weighted", [False, True])
    def test_kernels_reseed_identically(self, weighted):
        X, thetas, set_labels = self._empty_group_problem()
        weights = (
            np.random.default_rng(2).uniform(0.5, 2.0, size=50) if weighted
            else None
        )
        rng_g = np.random.default_rng(42)
        rng_f = np.random.default_rng(42)
        gathered = update_gather(X, thetas, set_labels, "sum", rng_g, weights)
        factored = update_factored(X, thetas, set_labels, "sum", rng_f, weights)
        # The reseeded protocentroid is drawn identically (and actually
        # is a reseed: a split of a data row, not a mean).
        np.testing.assert_array_equal(gathered[0][1], factored[0][1])
        replay = np.random.default_rng(42)
        expected_seed = SumAggregator().split(X[replay.integers(50)], 2)[0]
        np.testing.assert_array_equal(gathered[0][1], expected_seed)
        # Both kernels consumed exactly one draw: the streams stay in sync.
        assert rng_g.integers(1 << 30) == rng_f.integers(1 << 30)

    def test_missing_rng_raises_cleanly(self):
        # The public kernels must not crash with a bare AttributeError when
        # a reseed is needed but no rng was supplied.
        X, thetas, set_labels = self._empty_group_problem()
        for kernel in (update_gather, update_factored):
            with pytest.raises(ValidationError, match="rng"):
                kernel(X, thetas, set_labels, "sum")

    def test_fit_reseed_trajectories_stay_aligned(self):
        # End-to-end: a k >> n fit forces reseeds every sweep; identical
        # masses (bit-equal bincounts) must keep both kernels' reseed draws,
        # and hence their label trajectories, aligned.
        rng = np.random.default_rng(3)
        X = rng.normal(size=(12, 2))
        kwargs = dict(n_init=2, max_iter=15, random_state=0)
        gather = KhatriRaoKMeans((4, 4), update="gather", **kwargs).fit(X)
        factored = KhatriRaoKMeans((4, 4), update="factored", **kwargs).fit(X)
        np.testing.assert_array_equal(gather.labels_, factored.labels_)
        assert gather.n_iter_ == factored.n_iter_
        assert factored.inertia_ == pytest.approx(gather.inertia_, rel=1e-9)


class TestEstimatorGrid:
    """Full update × assignment × aggregator × weighted fit grid."""

    @pytest.mark.parametrize("weighted", [False, True])
    @pytest.mark.parametrize("assignment", ["materialized", "factored"])
    @pytest.mark.parametrize("cardinalities", [(4,), (3, 3), (2, 2, 2)])
    def test_sum_fits_equivalent(self, cardinalities, assignment, weighted):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(80, 4))
        weights = rng.uniform(0.2, 2.0, size=80) if weighted else None
        kwargs = dict(
            assignment=assignment, n_init=2, max_iter=25, random_state=0
        )
        gather = KhatriRaoKMeans(cardinalities, update="gather", **kwargs).fit(
            X, sample_weight=weights
        )
        factored = KhatriRaoKMeans(cardinalities, update="factored", **kwargs).fit(
            X, sample_weight=weights
        )
        np.testing.assert_array_equal(gather.labels_, factored.labels_)
        np.testing.assert_array_equal(gather.set_labels_, factored.set_labels_)
        assert gather.n_iter_ == factored.n_iter_
        assert factored.inertia_ == pytest.approx(
            gather.inertia_, rel=1e-9, abs=1e-9
        )
        for g, f in zip(gather.protocentroids_, factored.protocentroids_):
            np.testing.assert_allclose(f, g, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("pruning", ["none", "bounds"])
    def test_factored_update_with_pruning(self, pruning):
        # Hamerly bounds see only protocentroid values; the update kernel
        # may reorder their arithmetic without breaking prune exactness.
        rng = np.random.default_rng(4)
        X = rng.normal(size=(100, 3))
        kwargs = dict(n_init=1, max_iter=30, random_state=0, pruning=pruning)
        gather = KhatriRaoKMeans((3, 3), update="gather", **kwargs).fit(X)
        factored = KhatriRaoKMeans((3, 3), update="factored", **kwargs).fit(X)
        np.testing.assert_array_equal(gather.labels_, factored.labels_)
        assert factored.inertia_ == pytest.approx(gather.inertia_, rel=1e-9)

    def test_product_fits_bit_identical(self):
        # Arithmetic order unchanged for the gather fallback: the whole fit
        # — protocentroids, labels, inertia — must be bit-identical.
        rng = np.random.default_rng(5)
        X = np.abs(rng.normal(size=(60, 3))) + 0.5
        kwargs = dict(aggregator="product", n_init=2, max_iter=20, random_state=0)
        gather = KhatriRaoKMeans((2, 2), update="gather", **kwargs).fit(X)
        factored = KhatriRaoKMeans((2, 2), update="factored", **kwargs).fit(X)
        auto = KhatriRaoKMeans((2, 2), update="auto", **kwargs).fit(X)
        for model in (factored, auto):
            np.testing.assert_array_equal(gather.labels_, model.labels_)
            assert gather.inertia_ == model.inertia_
            for g, f in zip(gather.protocentroids_, model.protocentroids_):
                np.testing.assert_array_equal(g, f)

    def test_auto_resolves_by_capability(self):
        assert KhatriRaoKMeans((2, 2)).uses_factored_update
        assert not KhatriRaoKMeans((2, 2), update="gather").uses_factored_update
        assert not KhatriRaoKMeans(
            (2, 2), aggregator="product"
        ).uses_factored_update
        assert MiniBatchKhatriRaoKMeans((2, 2)).uses_factored_update
        assert not MiniBatchKhatriRaoKMeans(
            (2, 2), update="gather"
        ).uses_factored_update

    def test_invalid_update_rejected(self):
        with pytest.raises(ValidationError):
            KhatriRaoKMeans((2, 2), update="bogus")
        with pytest.raises(ValidationError):
            MiniBatchKhatriRaoKMeans((2, 2), update="bogus")

    @pytest.mark.parametrize("aggregator", ["sum", "product"])
    def test_minibatch_fits_equivalent(self, aggregator):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(300, 3))
        if aggregator == "product":
            X = np.abs(X) + 0.5
        kwargs = dict(
            aggregator=aggregator, batch_size=48, max_steps=20, random_state=0
        )
        gather = MiniBatchKhatriRaoKMeans((3, 3), update="gather", **kwargs).fit(X)
        factored = MiniBatchKhatriRaoKMeans(
            (3, 3), update="factored", **kwargs
        ).fit(X)
        np.testing.assert_array_equal(gather.labels_, factored.labels_)
        if aggregator == "product":  # gather fallback: bit-identical
            assert gather.inertia_ == factored.inertia_
        else:
            assert factored.inertia_ == pytest.approx(gather.inertia_, rel=1e-9)
        for g, f in zip(gather.protocentroids_, factored.protocentroids_):
            np.testing.assert_allclose(f, g, rtol=1e-9, atol=1e-9)

    def test_minibatch_pruned_schedule_unaffected(self):
        rng = np.random.default_rng(8)
        X = rng.normal(size=(400, 3))
        kwargs = dict(batch_size=64, max_steps=25, random_state=0)
        pruned = MiniBatchKhatriRaoKMeans(
            (3, 3), update="factored", pruning="bounds", **kwargs
        ).fit(X)
        unpruned = MiniBatchKhatriRaoKMeans(
            (3, 3), update="factored", pruning="none", **kwargs
        ).fit(X)
        np.testing.assert_array_equal(pruned.labels_, unpruned.labels_)
        assert pruned.inertia_ == unpruned.inertia_


class TestSeedExpectations:
    """Seed-expectation refresh for the contingency-table update (this PR).

    The update kernel change reorders floating point, so recorded
    expectations are certified rather than blindly re-pinned: the gather
    path must still reproduce the seed arithmetic *bit for bit* (the fused
    ``grouped_row_sum`` is accumulation-order-preserving), and the factored
    default may drift from the recorded golden only within an
    ``O(eps·m·|value|)`` band.  No other golden in ``tests/`` shifted
    beyond its existing tolerance under the new default.
    """

    #: recorded under the seed (gather) arithmetic — see class docstring.
    GOLDEN_INERTIA = 9442.919500903454

    def _fit(self, update):
        from repro.datasets import make_blobs

        X, _ = make_blobs(400, n_features=4, n_clusters=9, random_state=0)
        return KhatriRaoKMeans(
            (3, 3), update=update, n_init=3, random_state=0
        ).fit(X)

    def test_gather_reproduces_seed_expectation_exactly(self):
        assert self._fit("gather").inertia_ == self.GOLDEN_INERTIA

    def test_factored_drift_within_certified_band(self):
        model = self._fit("factored")
        m = 4
        band = EPS * 64 * m * abs(self.GOLDEN_INERTIA)
        drift = abs(model.inertia_ - self.GOLDEN_INERTIA)
        assert drift <= band, (drift, band)


class TestSummaryAndFederatedRouting:
    def test_summary_refine_improves_and_matches_gather(self):
        from repro.summary import summarize

        rng = np.random.default_rng(10)
        X = rng.normal(size=(120, 3))
        model = KhatriRaoKMeans((3, 3), n_init=2, random_state=0).fit(X[:60])
        base = summarize(model)
        before = base.inertia(X)
        refined_f = summarize(model).refine(X, n_steps=3, update="factored",
                                            random_state=0)
        refined_g = summarize(model).refine(X, n_steps=3, update="gather",
                                            random_state=0)
        assert refined_f.inertia(X) <= before + 1e-9
        for f, g in zip(refined_f.protocentroids, refined_g.protocentroids):
            np.testing.assert_allclose(f, g, rtol=1e-9, atol=1e-9)

    def test_summary_refine_validates_features(self):
        from repro.summary import DataSummary

        summary = DataSummary([np.zeros((2, 3)), np.zeros((2, 3))])
        with pytest.raises(ValidationError):
            summary.refine(np.zeros((4, 5)))

    def test_federated_sum_round_matches_manual_update(self):
        # One factored federated round with a single client and local_steps=1
        # equals the plain closed-form Jacobi update of Prop 6.1 computed by
        # hand from the same labels (per-set, against the *old* other sets —
        # the federated server updates sets sequentially but re-assigns
        # between sets, so we check set 0 only).
        from repro.federated import KhatriRaoFederatedKMeans

        rng = np.random.default_rng(12)
        X = rng.normal(size=(100, 3))
        model = KhatriRaoFederatedKMeans(
            (2, 2), aggregator="sum", n_rounds=1, local_steps=1, random_state=0
        )
        model.fit([(X, None)])
        assert model.protocentroids_ is not None
        assert np.isfinite(model.history_.inertia[-1])
        assert model.history_.inertia[-1] <= model.initial_inertia_ + 1e-9
