"""Tests for the deterministic row-block execution layer (PR 9 tentpole).

The contract under test: block boundaries are a pure function of
``(n_rows, block_rows)`` — never of the thread count — and reductions
merge in ascending block order, so ``n_threads=1`` and ``n_threads=8``
produce bit-identical labels, inertia and iteration counts.  The same
blocked seam streams a memory-mapped ``X`` through ``fit`` one block at
a time, bit-identical to the in-RAM fit.
"""

import threading

import numpy as np
import pytest

from repro import KhatriRaoKMeans, KMeans
from repro.core import MiniBatchKhatriRaoKMeans
from repro.exceptions import ValidationError
from repro.runtime.parallel import (
    DEFAULT_BLOCK_ROWS,
    ParallelConfig,
    RowBlockPool,
    fold_blocks,
    open_row_pool,
    resolve_parallel,
    row_blocks,
)

# Small enough that the 500-row fixtures split into many blocks — the
# determinism grid must exercise real multi-block merges, not the
# single-block degenerate case.
SMALL_BLOCK = 64


def _cfg(n_threads):
    return ParallelConfig(n_threads, block_rows=SMALL_BLOCK)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    base = np.array(
        [[0.0, 0.0, 0.0], [0.0, 6.0, 0.0], [6.0, 0.0, 6.0], [6.0, 6.0, 6.0]]
    )
    return np.vstack([b + 0.3 * rng.normal(size=(125, 3)) for b in base])


class TestRowBlocks:
    def test_partition_covers_rows_in_order(self):
        blocks = row_blocks(10, 4)
        assert blocks == ((0, 4), (4, 8), (8, 10))

    def test_single_block_when_small(self):
        assert row_blocks(3, 100) == ((0, 3),)

    def test_empty_input(self):
        assert row_blocks(0, 4) == ()

    def test_independent_of_thread_count(self):
        # The whole contract: the partition is a function of (n, block_rows)
        # only.  Pools of every width must report the same blocks.
        for width in (1, 2, 8):
            with RowBlockPool(_cfg(width)) as pool:
                assert pool.blocks(500) == row_blocks(500, SMALL_BLOCK)

    def test_invalid_block_rows(self):
        with pytest.raises(ValidationError):
            row_blocks(10, 0)


class TestResolveParallel:
    def test_none_without_env_stays_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_N_THREADS", raising=False)
        assert resolve_parallel(None) is None

    def test_none_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_THREADS", "3")
        config = resolve_parallel(None)
        assert config.n_threads == 3
        assert config.block_rows == DEFAULT_BLOCK_ROWS

    def test_env_empty_or_nonpositive_stays_none(self, monkeypatch):
        for value in ("", "  ", "0", "-2"):
            monkeypatch.setenv("REPRO_N_THREADS", value)
            assert resolve_parallel(None) is None

    def test_env_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_THREADS", "many")
        with pytest.raises(ValidationError):
            resolve_parallel(None)

    def test_int_and_config_pass_through(self):
        assert resolve_parallel(4).n_threads == 4
        config = _cfg(2)
        assert resolve_parallel(config) is config

    def test_invalid_values_raise(self):
        with pytest.raises(ValidationError):
            resolve_parallel(0)
        with pytest.raises(ValidationError):
            resolve_parallel(True)  # bools are not thread counts
        with pytest.raises(ValidationError):
            resolve_parallel("4")


class TestRowBlockPool:
    def test_results_in_block_order(self):
        # Delay early blocks so completion order inverts block order; the
        # results must come back in block order regardless.
        import time

        def block(start, stop):
            time.sleep(0.02 if start == 0 else 0.0)
            return (start, stop)

        with RowBlockPool(_cfg(4)) as pool:
            assert pool.map(block, 10 * SMALL_BLOCK) == list(
                row_blocks(10 * SMALL_BLOCK, SMALL_BLOCK)
            )

    def test_lowest_failing_block_wins(self):
        # Blocks 3 and 7 both fail; block 7 fails instantly, block 3 only
        # after a delay.  The error surfaced must still be block 3's.
        import time

        def block(start, stop):
            index = start // SMALL_BLOCK
            if index == 3:
                time.sleep(0.02)
                raise RuntimeError("block 3")
            if index == 7:
                raise RuntimeError("block 7")
            return index

        with RowBlockPool(_cfg(8)) as pool:
            with pytest.raises(RuntimeError, match="block 3"):
                pool.map(block, 10 * SMALL_BLOCK)
            # The pool survives a failed map and runs the next one.
            assert pool.map(lambda s, e: e - s, 2 * SMALL_BLOCK) == [
                SMALL_BLOCK, SMALL_BLOCK
            ]

    def test_runs_on_pool_threads(self):
        names = set()

        def block(start, stop):
            names.add(threading.current_thread().name)
            return None

        with RowBlockPool(_cfg(2)) as pool:
            pool.map(block, 4 * SMALL_BLOCK)
        assert names and all(n.startswith("repro-rowblock") for n in names)

    def test_fold_blocks_is_block_ordered(self):
        parts = [np.array([1.0]), np.array([2.0]), np.array([4.0])]
        assert fold_blocks(parts)[0] == 7.0

    def test_open_row_pool_none(self):
        with open_row_pool(None) as pool:
            assert pool is None


def _fit_state(model):
    return model.labels_, model.inertia_, model.n_iter_


class TestThreadCountDeterminism:
    """The acceptance grid: labels, inertia and iteration counts are
    bit-identical across ``n_threads ∈ {1, 2, 8}`` for every assignment
    strategy, pruning mode and working dtype."""

    @pytest.mark.parametrize("assignment", ["auto", "materialized"])
    @pytest.mark.parametrize("pruning", ["bounds", "none"])
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_kr_kmeans_grid(self, data, assignment, pruning, dtype):
        fits = [
            KhatriRaoKMeans(
                (2, 2), n_init=2, random_state=0, assignment=assignment,
                pruning=pruning, dtype=dtype, n_threads=_cfg(t),
            ).fit(data)
            for t in (1, 2, 8)
        ]
        labels, inertia, n_iter = _fit_state(fits[0])
        for other in fits[1:]:
            np.testing.assert_array_equal(other.labels_, labels)
            assert other.inertia_ == inertia
            assert other.n_iter_ == n_iter

    def test_kr_kmeans_memory_mode(self, data):
        fits = [
            KhatriRaoKMeans(
                (2, 2), n_init=2, random_state=0, mode="memory",
                chunk_size=3, n_threads=_cfg(t),
            ).fit(data)
            for t in (1, 2, 8)
        ]
        assert _fit_state(fits[0])[1:] == _fit_state(fits[1])[1:] == _fit_state(fits[2])[1:]
        np.testing.assert_array_equal(fits[0].labels_, fits[2].labels_)

    def test_kr_kmeans_product_aggregator(self, data):
        X = np.abs(data) + 0.5
        fits = [
            KhatriRaoKMeans(
                (2, 2), aggregator="product", n_init=2, random_state=0,
                n_threads=_cfg(t),
            ).fit(X)
            for t in (1, 8)
        ]
        np.testing.assert_array_equal(fits[0].labels_, fits[1].labels_)
        assert fits[0].inertia_ == fits[1].inertia_

    @pytest.mark.parametrize("pruning", ["bounds", "none"])
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_kmeans_grid(self, data, pruning, dtype):
        fits = [
            KMeans(
                4, n_init=2, random_state=0, pruning=pruning, dtype=dtype,
                n_threads=_cfg(t),
            ).fit(data)
            for t in (1, 2, 8)
        ]
        labels, inertia, n_iter = _fit_state(fits[0])
        for other in fits[1:]:
            np.testing.assert_array_equal(other.labels_, labels)
            assert other.inertia_ == inertia
            assert other.n_iter_ == n_iter

    @pytest.mark.parametrize("pruning", ["bounds", "none"])
    def test_minibatch_grid(self, data, pruning):
        fits = [
            MiniBatchKhatriRaoKMeans(
                (2, 2), batch_size=96, max_steps=25, random_state=0,
                pruning=pruning, n_threads=_cfg(t),
            ).fit(data)
            for t in (1, 2, 8)
        ]
        for other in fits[1:]:
            np.testing.assert_array_equal(other.labels_, fits[0].labels_)
            assert other.inertia_ == fits[0].inertia_
            assert other.n_steps_ == fits[0].n_steps_

    def test_weighted_fit_grid(self, data):
        rng = np.random.default_rng(11)
        w = rng.uniform(0.5, 2.0, size=data.shape[0])
        for cls, kwargs in (
            (KMeans, {"n_clusters": 4}),
            (KhatriRaoKMeans, {"cardinalities": (2, 2)}),
        ):
            first = kwargs.pop("n_clusters", None) or kwargs.pop("cardinalities")
            fits = [
                cls(first, n_init=2, random_state=0, n_threads=_cfg(t)).fit(
                    data, sample_weight=w
                )
                for t in (1, 8)
            ]
            np.testing.assert_array_equal(fits[0].labels_, fits[1].labels_)
            assert fits[0].inertia_ == fits[1].inertia_

    def test_env_var_engages_blocked_layer(self, data, monkeypatch):
        monkeypatch.setenv("REPRO_N_THREADS", "2")
        threaded = KhatriRaoKMeans((2, 2), n_init=2, random_state=0).fit(data)
        assert threaded.n_threads is not None
        monkeypatch.delenv("REPRO_N_THREADS")
        plain = KhatriRaoKMeans((2, 2), n_init=2, random_state=0).fit(data)
        # n < DEFAULT_BLOCK_ROWS → single block → identical to the legacy
        # sweep (this is what keeps the threaded CI leg golden-safe).
        assert data.shape[0] < DEFAULT_BLOCK_ROWS
        np.testing.assert_array_equal(threaded.labels_, plain.labels_)
        assert threaded.inertia_ == plain.inertia_

    def test_n_jobs_composes_with_n_threads(self, data):
        # n_jobs runs restarts on spawned per-restart streams (its own
        # worker-count invariance), so the baseline is n_jobs=1 — the grid
        # here varies both pool widths at once.
        a = KhatriRaoKMeans(
            (2, 2), n_init=4, random_state=0, n_jobs=2, n_threads=_cfg(2)
        ).fit(data)
        b = KhatriRaoKMeans(
            (2, 2), n_init=4, random_state=0, n_jobs=1, n_threads=_cfg(8)
        ).fit(data)
        np.testing.assert_array_equal(a.labels_, b.labels_)
        assert a.inertia_ == b.inertia_

    def test_predict_matches_fit_labels(self, data):
        model = KhatriRaoKMeans(
            (2, 2), n_init=2, random_state=0, n_threads=_cfg(8)
        ).fit(data)
        np.testing.assert_array_equal(model.predict(data), model.labels_)


class TestMemmapStreaming:
    """A memory-mapped ``X`` streams through ``fit`` block by block and
    produces the bit-identical model of the in-RAM fit."""

    def _memmap(self, tmp_path, data, dtype=np.float64):
        path = tmp_path / "X.dat"
        arr = np.asarray(data, dtype=dtype)
        mm = np.memmap(path, dtype=dtype, mode="w+", shape=arr.shape)
        mm[:] = arr
        mm.flush()
        return np.memmap(path, dtype=dtype, mode="r", shape=arr.shape)

    def test_kr_fit_bit_identical_to_ram(self, tmp_path, data):
        mm = self._memmap(tmp_path, data)
        ram = KhatriRaoKMeans(
            (2, 2), n_init=2, random_state=0, n_threads=_cfg(2)
        ).fit(data)
        mapped = KhatriRaoKMeans(
            (2, 2), n_init=2, random_state=0, n_threads=_cfg(2)
        ).fit(mm)
        np.testing.assert_array_equal(mapped.labels_, ram.labels_)
        assert mapped.inertia_ == ram.inertia_
        assert mapped.n_iter_ == ram.n_iter_
        for got, want in zip(mapped.protocentroids_, ram.protocentroids_):
            np.testing.assert_array_equal(got, want)

    def test_kmeans_weighted_memmap(self, tmp_path, data):
        rng = np.random.default_rng(5)
        w = rng.uniform(0.5, 2.0, size=data.shape[0])
        mm = self._memmap(tmp_path, data)
        ram = KMeans(4, n_init=2, random_state=0, n_threads=_cfg(2)).fit(
            data, sample_weight=w
        )
        mapped = KMeans(4, n_init=2, random_state=0, n_threads=_cfg(2)).fit(
            mm, sample_weight=w
        )
        np.testing.assert_array_equal(mapped.labels_, ram.labels_)
        assert mapped.inertia_ == ram.inertia_

    def test_minibatch_memmap(self, tmp_path, data):
        mm = self._memmap(tmp_path, data)
        ram = MiniBatchKhatriRaoKMeans(
            (2, 2), batch_size=96, max_steps=20, random_state=0,
            n_threads=_cfg(2),
        ).fit(data)
        mapped = MiniBatchKhatriRaoKMeans(
            (2, 2), batch_size=96, max_steps=20, random_state=0,
            n_threads=_cfg(2),
        ).fit(mm)
        np.testing.assert_array_equal(mapped.labels_, ram.labels_)
        assert mapped.inertia_ == ram.inertia_

    def test_float32_memmap(self, tmp_path, data):
        mm = self._memmap(tmp_path, data, dtype=np.float32)
        ram = KhatriRaoKMeans(
            (2, 2), n_init=2, random_state=0, dtype="float32",
            n_threads=_cfg(2),
        ).fit(np.asarray(data, dtype=np.float32))
        mapped = KhatriRaoKMeans(
            (2, 2), n_init=2, random_state=0, dtype="float32",
            n_threads=_cfg(2),
        ).fit(mm)
        np.testing.assert_array_equal(mapped.labels_, ram.labels_)
        assert mapped.inertia_ == ram.inertia_

    def test_memmap_nan_rejected(self, tmp_path, data):
        corrupted = np.array(data, copy=True)
        corrupted[37, 1] = np.nan
        mm = self._memmap(tmp_path, corrupted)
        with pytest.raises(ValidationError, match="NaN or infinite"):
            KhatriRaoKMeans((2, 2), n_threads=_cfg(2)).fit(mm)

    def test_memmap_dtype_mismatch_rejected(self, tmp_path, data):
        # Casting would materialize the map in RAM, defeating the point —
        # a typed error tells the caller to store the working dtype.
        mm = self._memmap(tmp_path, data, dtype=np.float32)
        with pytest.raises(ValidationError, match="memory-mapped"):
            KhatriRaoKMeans((2, 2), dtype="float64", n_threads=_cfg(2)).fit(mm)
