"""Tests for the dataset generators and the Table 1 registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    dataset_names,
    dataset_summary_table,
    load_dataset,
    make_blobs,
    make_chameleon,
    make_classification,
    make_digit_images,
    make_double_digits,
    make_faces,
    make_har_features,
    make_khatri_rao_blobs,
    make_r15,
    make_soybean_like,
    make_stickfigures,
    make_symbols,
)
from repro.exceptions import DatasetError, ValidationError
from repro.linalg import khatri_rao_combine


class TestSyntheticGenerators:
    def test_blobs_shapes_and_balance(self):
        X, y = make_blobs(500, n_features=3, n_clusters=10, random_state=0)
        assert X.shape == (500, 3)
        counts = np.bincount(y)
        assert counts.min() == counts.max() == 50

    def test_blobs_separable(self):
        X, y = make_blobs(200, n_clusters=4, cluster_std=0.1, random_state=0)
        from repro import KMeans
        from repro.metrics import adjusted_rand_index

        model = KMeans(4, n_init=5, random_state=0).fit(X)
        assert adjusted_rand_index(y, model.labels_) > 0.95

    def test_classification_imbalance(self):
        X, y = make_classification(1000, n_clusters=10, imbalance_ratio=0.5,
                                   random_state=0)
        counts = np.bincount(y)
        assert 0.3 <= counts.min() / counts.max() <= 0.8

    def test_khatri_rao_blobs_structure(self):
        X, y, thetas = make_khatri_rao_blobs((3, 2), n_samples=300,
                                             aggregator="sum", random_state=0)
        assert len(thetas) == 2
        centroids = khatri_rao_combine(thetas, "sum")
        assert centroids.shape == (6, 2)
        # Empirical cluster means are close to the generating centroids.
        for label in range(6):
            mean = X[y == label].mean(axis=0)
            assert np.linalg.norm(mean - centroids[label]) < 0.5

    def test_khatri_rao_blobs_product_positive_protocentroids(self):
        _, _, thetas = make_khatri_rao_blobs((2, 2), aggregator="product",
                                             n_samples=100, random_state=0)
        for theta in thetas:
            assert np.all(theta > 0)

    def test_r15(self):
        X, y = make_r15(600, random_state=0)
        assert X.shape == (600, 2)
        assert len(np.unique(y)) == 15

    def test_chameleon_noise_and_imbalance(self):
        X, y = make_chameleon(2000, noise_fraction=0.25, random_state=0)
        assert X.shape == (2000, 2)
        assert len(np.unique(y)) == 10
        counts = np.bincount(y)
        assert counts.min() / counts.max() < 0.5  # strongly imbalanced

    def test_chameleon_rejects_bad_noise(self):
        with pytest.raises(ValidationError):
            make_chameleon(100, noise_fraction=1.0)

    def test_soybean_like_categorical(self):
        X, y = make_soybean_like(300, n_features=10, n_clusters=5,
                                 n_categories=4, random_state=0)
        assert X.shape == (300, 10)
        assert set(np.unique(X)).issubset({0.0, 1.0, 2.0, 3.0})

    @given(st.integers(20, 100), st.integers(2, 5))
    @settings(max_examples=15, deadline=None)
    def test_blobs_label_range(self, n, k):
        X, y = make_blobs(n, n_clusters=k, random_state=0)
        assert y.min() >= 0 and y.max() == k - 1
        assert X.shape[0] == n


class TestImageGenerators:
    def test_digits_shapes(self):
        X, y = make_digit_images(50, side=14, random_state=0)
        assert X.shape == (50, 196)
        assert X.min() >= 0.0 and X.max() <= 1.0
        assert y.max() < 10

    def test_digits_distinguishable(self):
        # Same-digit images should be more alike than different digits.
        X, y = make_digit_images(200, side=14, random_state=0)
        zeros = X[y == 0]
        ones = X[y == 1]
        within = np.linalg.norm(zeros[0] - zeros[1])
        between = np.linalg.norm(zeros[0] - ones[0])
        assert within < between

    def test_digits_rejects_too_many_classes(self):
        with pytest.raises(ValidationError):
            make_digit_images(10, n_digits=11)

    def test_double_digits_structure(self):
        X, y = make_double_digits(30, side=14, random_state=0)
        assert X.shape == (30, 2 * 196)
        assert y.max() < 100

    def test_double_digits_label_encodes_pair(self):
        X, y = make_double_digits(100, side=14, n_digits=10, random_state=0)
        # Left halves of images with same left digit should correlate.
        left_digit = y // 10
        side = 14
        images = X.reshape(-1, side, 2 * side)
        lefts = images[:, :, :side].reshape(len(y), -1)
        group0 = lefts[left_digit == left_digit[0]]
        assert group0.shape[0] >= 2

    def test_stickfigures(self):
        X, y = make_stickfigures(90, side=20, random_state=0)
        assert X.shape == (90, 400)
        assert set(np.unique(y)).issubset(set(range(9)))

    def test_stickfigures_shared_upper_pose(self):
        """Clusters sharing the upper pose share the top half (KR structure)."""
        X, y = make_stickfigures(450, side=20, noise=0.0, random_state=0)
        images = X.reshape(-1, 20, 20)
        # labels 0,1,2 share upper pose 0; compare top halves.
        a = images[y == 0][0][:10]
        b = images[y == 1][0][:10]
        c = images[y == 3][0][:10]  # different upper pose
        assert np.allclose(a, b)
        assert not np.allclose(a, c)

    def test_faces(self):
        X, y = make_faces(5, 4, height=16, width=16, random_state=0)
        assert X.shape == (20, 256)
        assert len(np.unique(y)) == 5

    def test_faces_within_person_similarity(self):
        X, y = make_faces(4, 6, height=16, width=16, pose_std=0.1, random_state=0)
        person0 = X[y == 0]
        person1 = X[y == 1]
        within = np.linalg.norm(person0[0] - person0[1])
        between = np.linalg.norm(person0[0] - person1[0])
        assert within < between

    def test_symbols(self):
        X, y = make_symbols(60, length=100, random_state=0)
        assert X.shape == (60, 100)
        assert y.max() < 6

    def test_symbols_rejects_too_many_classes(self):
        with pytest.raises(ValidationError):
            make_symbols(10, n_classes=7)

    def test_har(self):
        X, y = make_har_features(300, n_features=50, random_state=0)
        assert X.shape == (300, 50)
        counts = np.bincount(y)
        assert 0.4 < counts.min() / counts.max() < 1.0


class TestRegistry:
    def test_names_match_table1(self):
        names = dataset_names()
        assert len(names) == 13
        assert "mnist" in names and "blobs" in names and "r15" in names

    def test_load_scaled(self):
        ds = load_dataset("r15", scale=0.5, random_state=0)
        assert ds.n_samples == 300
        assert ds.n_features == 2
        assert ds.n_labels == 15

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_dataset("imagenet")

    def test_bad_scale(self):
        with pytest.raises(DatasetError):
            load_dataset("r15", scale=0.0)
        with pytest.raises(DatasetError):
            load_dataset("r15", scale=1.5)

    def test_name_normalization(self):
        ds = load_dataset("Double MNIST", scale=0.05, random_state=0)
        assert ds.name == "double_mnist"

    def test_kr_structure_flags(self):
        assert load_dataset("stickfigures", scale=0.1,
                            random_state=0).has_khatri_rao_structure
        assert not load_dataset("r15", scale=0.2,
                                random_state=0).has_khatri_rao_structure

    @pytest.mark.parametrize("name", dataset_names())
    def test_all_datasets_load_small(self, name):
        ds = load_dataset(name, scale=0.02, random_state=0)
        assert ds.n_samples >= ds.n_labels
        assert np.all(np.isfinite(ds.data))
        assert ds.labels.shape == (ds.n_samples,)
        assert 0.0 < ds.imbalance_ratio <= 1.0

    def test_standardized_datasets_are_standardized(self):
        ds = load_dataset("har", scale=0.05, random_state=0)
        np.testing.assert_allclose(ds.data.mean(axis=0), 0.0, atol=1e-8)

    def test_image_datasets_in_unit_range(self):
        ds = load_dataset("stickfigures", scale=0.1, random_state=0)
        assert ds.data.min() >= 0.0 and ds.data.max() <= 1.0

    def test_summary_table_renders(self):
        table = dataset_summary_table(scale=0.02, random_state=0)
        assert "Dataset" in table
        assert "stickfigures" in table
        assert len(table.splitlines()) == 15  # header + rule + 13 rows
