"""Retry-client tests: backoff policy, Retry-After, request-ID threading.

The policy tests run against a scripted in-memory transport (no sockets,
no sleeping — the injectable ``sleep`` records what the client *would*
wait), so every retry decision is deterministic.  One integration test at
the end speaks to a real :class:`ServingServer` over loopback.
"""

import json
import urllib.error

import pytest

from repro import KhatriRaoKMeans, summarize
from repro.datasets import make_blobs
from repro.serving import ModelRegistry, ServingClient, ServingClientError, create_server


def _body(payload) -> bytes:
    return json.dumps(payload).encode("utf-8")


OK = (200, {}, _body({"ok": True}))
OVERLOADED = (
    503,
    {"Retry-After": "0.500"},
    _body({"error": {"type": "OverloadedError", "message": "shed",
                     "retry_after": 0.5}}),
)
BAD_REQUEST = (
    400, {}, _body({"error": {"type": "ValidationError", "message": "bad rows"}})
)


class ScriptedTransport:
    """Returns (or raises) the scripted responses in order, recording calls."""

    def __init__(self, *script):
        self.script = list(script)
        self.calls = []

    def __call__(self, method, url, body, headers, timeout):
        self.calls.append((method, url, body, dict(headers)))
        action = self.script.pop(0)
        if isinstance(action, Exception):
            raise action
        return action


class RecordingSleep:
    def __init__(self):
        self.delays = []

    def __call__(self, seconds):
        self.delays.append(seconds)


def make_client(transport, **kwargs):
    kwargs.setdefault("seed", 0)
    kwargs.setdefault("backoff_s", 0.01)
    return ServingClient(
        "http://test", transport=transport, sleep=RecordingSleep(), **kwargs
    )


class TestRetryPolicy:
    def test_retries_503_and_honors_retry_after_as_a_floor(self):
        transport = ScriptedTransport(OVERLOADED, OK)
        client = make_client(transport)
        assert client.get("/v1/models") == {"ok": True}
        assert len(transport.calls) == 2
        # The jittered exponential wait is tiny (base 10 ms); the server's
        # 0.5 s hint must have raised it.
        assert client._sleep.delays == [pytest.approx(0.5)]

    def test_connection_errors_retry_too(self):
        transport = ScriptedTransport(urllib.error.URLError("refused"), OK)
        client = make_client(transport)
        assert client.get("/healthz") == {"ok": True}
        assert len(transport.calls) == 2

    def test_exhausted_retries_raise_with_the_last_response(self):
        transport = ScriptedTransport(OVERLOADED, OVERLOADED)
        client = make_client(transport, max_retries=1)
        with pytest.raises(ServingClientError) as excinfo:
            client.get("/v1/models")
        err = excinfo.value
        assert err.status == 503
        assert err.error_type == "OverloadedError"
        assert err.attempts == 2
        assert err.body["error"]["retry_after"] == 0.5

    def test_non_retriable_400_raises_immediately(self):
        transport = ScriptedTransport(BAD_REQUEST)
        client = make_client(transport)
        with pytest.raises(ServingClientError) as excinfo:
            client.post("/v1/models/m/assign", {"rows": []})
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "ValidationError"
        assert excinfo.value.attempts == 1
        assert len(transport.calls) == 1
        assert client._sleep.delays == []

    def test_max_retries_zero_never_sleeps(self):
        transport = ScriptedTransport(OVERLOADED)
        client = make_client(transport, max_retries=0)
        with pytest.raises(ServingClientError):
            client.get("/v1/models")
        assert client._sleep.delays == []

    def test_backoff_is_seeded_exponential_with_jitter(self):
        a = ServingClient("http://test", seed=5, backoff_s=0.1, backoff_cap_s=1.0)
        b = ServingClient("http://test", seed=5, backoff_s=0.1, backoff_cap_s=1.0)
        waits_a = [a._backoff(i, None) for i in range(5)]
        waits_b = [b._backoff(i, None) for i in range(5)]
        assert waits_a == waits_b  # same seed, same jitter stream
        for attempt, wait in enumerate(waits_a):
            ceiling = min(1.0, 0.1 * 2 ** attempt)
            assert ceiling * 0.5 <= wait < ceiling
        # The cap binds from attempt 4 on (0.1 * 2**4 = 1.6 > 1.0).
        assert waits_a[4] < 1.0


class TestProtocolHeaders:
    def test_one_request_id_rides_every_retry(self):
        transport = ScriptedTransport(OVERLOADED, urllib.error.URLError("x"), OK)
        client = make_client(transport)
        client.get("/v1/models")
        rids = [headers["X-Request-ID"] for *_, headers in transport.calls]
        assert len(rids) == 3
        assert len(set(rids)) == 1, "retries must share one request ID"
        assert rids[0].startswith("cli-")

    def test_caller_supplied_request_id_wins(self):
        transport = ScriptedTransport(OK)
        make_client(transport).get("/healthz", request_id="my-trace-42")
        assert transport.calls[0][3]["X-Request-ID"] == "my-trace-42"

    def test_deadline_ms_becomes_the_header(self):
        transport = ScriptedTransport(OK)
        make_client(transport).assign("m", [[0.0, 1.0]], deadline_ms=250)
        method, url, body, headers = transport.calls[0]
        assert method == "POST"
        assert url.endswith("/v1/models/m/assign")
        assert headers["X-Deadline-Ms"] == "250"
        assert json.loads(body) == {"rows": [[0.0, 1.0]]}

    def test_healthz_returns_a_draining_503_body_instead_of_raising(self):
        draining = (
            503, {}, _body({"status": "draining", "models": 1})
        )
        client = make_client(ScriptedTransport(draining))
        assert client.healthz()["status"] == "draining"

    def test_healthz_never_retries(self):
        transport = ScriptedTransport(urllib.error.URLError("down"))
        client = make_client(transport)
        with pytest.raises(ServingClientError):
            client.healthz()
        assert len(transport.calls) == 1


class TestAgainstARealServer:
    def test_round_trip(self):
        X, _ = make_blobs(200, n_clusters=9, random_state=0)
        model = KhatriRaoKMeans((3, 3), n_init=2, random_state=0).fit(X)
        registry = ModelRegistry()
        registry.register("blobs", summarize(model))
        server = create_server(
            registry, window_s=0.002, log_requests=False
        ).start()
        try:
            client = ServingClient(server.url, seed=0)
            assert client.healthz()["status"] == "ok"
            assert [m["name"] for m in client.models()] == ["blobs"]
            result = client.assign(
                "blobs", X[:8], deadline_ms=10_000, request_id="it-1"
            )
            assert result["request_id"] == "it-1"
            expected = registry.get("blobs").assign(X[:8])
            assert result["labels"] == expected.tolist()
            with pytest.raises(ServingClientError) as excinfo:
                client.assign("nope", X[:2])
            assert excinfo.value.status == 404
            assert excinfo.value.error_type == "ModelNotFoundError"
        finally:
            server.stop()
