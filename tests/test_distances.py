"""Tests for the shared squared-distance kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core._distances import assign_to_nearest, squared_distances


class TestSquaredDistances:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(10, 4))
        C = rng.normal(size=(6, 4))
        expected = ((X[:, None, :] - C[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(squared_distances(X, C), expected, atol=1e-10)

    def test_zero_on_identical_rows(self):
        X = np.arange(12.0).reshape(4, 3)
        distances = squared_distances(X, X)
        np.testing.assert_allclose(np.diag(distances), 0.0, atol=1e-9)

    def test_never_negative_despite_cancellation(self):
        # Large offsets provoke floating-point cancellation; the kernel clips.
        X = 1e8 + np.random.default_rng(1).normal(size=(20, 3))
        distances = squared_distances(X, X[:5])
        assert distances.min() >= 0.0


class TestAssignToNearest:
    @given(st.integers(1, 30), st.integers(1, 20), st.integers(0, 25))
    @settings(max_examples=40, deadline=None)
    def test_chunked_matches_full(self, k, chunk_size, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(15, 3))
        C = rng.normal(size=(k, 3))
        full_labels, full_distances = assign_to_nearest(X, C)
        chunk_labels, chunk_distances = assign_to_nearest(
            X, C, chunk_size=chunk_size
        )
        np.testing.assert_array_equal(full_labels, chunk_labels)
        np.testing.assert_allclose(full_distances, chunk_distances, atol=1e-9)

    def test_labels_are_argmin(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(25, 2))
        C = rng.normal(size=(7, 2))
        labels, distances = assign_to_nearest(X, C)
        brute = ((X[:, None, :] - C[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_array_equal(labels, brute.argmin(axis=1))
        np.testing.assert_allclose(distances, brute.min(axis=1), atol=1e-9)

    def test_single_centroid(self):
        X = np.random.default_rng(3).normal(size=(10, 2))
        labels, _ = assign_to_nearest(X, X[:1])
        assert np.all(labels == 0)
