"""Tests for the naïve two-phase approach (Section 5, Eq. 8)."""

import numpy as np
import pytest

from repro import KhatriRaoKMeans, NaiveKhatriRao
from repro.core.naive import decompose_centroids
from repro.exceptions import NotFittedError, ValidationError
from repro.linalg import khatri_rao_combine


class TestDecomposeCentroids:
    @pytest.mark.parametrize("aggregator", ["sum", "product"])
    def test_exact_structure_recovered(self, aggregator):
        rng = np.random.default_rng(0)
        if aggregator == "product":
            thetas_true = [rng.uniform(0.5, 2.0, size=(3, 4)) for _ in (0, 1)]
        else:
            thetas_true = [rng.normal(size=(3, 4)) for _ in (0, 1)]
        centroids = khatri_rao_combine(thetas_true, aggregator)
        thetas, error = decompose_centroids(
            centroids, (3, 3), aggregator=aggregator, random_state=0
        )
        assert error < 1e-6 * max(np.sum(centroids**2), 1.0)
        approx = khatri_rao_combine(thetas, aggregator)
        np.testing.assert_allclose(approx, centroids, atol=1e-3)

    def test_unstructured_centroids_have_residual(self):
        rng = np.random.default_rng(1)
        centroids = rng.normal(size=(9, 5))
        _, error = decompose_centroids(centroids, (3, 3), aggregator="sum",
                                       random_state=0)
        assert error > 0.01  # generic centroids are not KR-representable

    def test_error_decreases_relative_to_init(self):
        rng = np.random.default_rng(2)
        centroids = rng.uniform(0.5, 2.0, size=(6, 3))
        thetas, error = decompose_centroids(
            centroids, (2, 3), aggregator="product", random_state=0
        )
        assert np.isfinite(error)
        approx = khatri_rao_combine(thetas, "product")
        assert np.sum((approx - centroids) ** 2) == pytest.approx(error)

    def test_row_count_mismatch(self):
        with pytest.raises(ValidationError):
            decompose_centroids(np.ones((5, 2)), (2, 3))

    def test_three_sets(self):
        rng = np.random.default_rng(3)
        thetas_true = [rng.normal(size=(2, 3)) for _ in range(3)]
        centroids = khatri_rao_combine(thetas_true, "sum")
        thetas, error = decompose_centroids(
            centroids, (2, 2, 2), aggregator="sum", random_state=0
        )
        assert len(thetas) == 3
        assert error < 1e-6 * max(np.sum(centroids**2), 1.0)


class TestNaiveKhatriRao:
    def test_fit_pipeline(self, blobs_grid_9):
        X, y, _ = blobs_grid_9
        model = NaiveKhatriRao((3, 3), aggregator="sum", n_init=5, random_state=0).fit(X)
        assert model.initial_centroids_.shape == (9, 2)
        assert model.centroids().shape == (9, 2)
        assert model.labels_.shape == (X.shape[0],)
        assert np.isfinite(model.inertia_)
        assert model.parameter_count() == 6 * 2

    def test_phase1_quality_can_be_destroyed(self, blobs_grid_9):
        """Section 5's limitation: even when the phase-1 centroids are exactly
        KR-structured, k-Means returns them in arbitrary row order, so the
        order-sensitive decomposition generally cannot recover the structure
        and the summary degrades relative to phase 1."""
        X, _, _ = blobs_grid_9
        from repro import KMeans

        model = NaiveKhatriRao((3, 3), aggregator="sum", n_init=10, random_state=0).fit(X)
        km = KMeans(9, n_init=10, random_state=0).fit(X)
        assert model.inertia_ >= km.inertia_

    def test_grid_ordered_centroids_decompose_exactly(self, blobs_grid_9):
        """When centroids ARE supplied in grid order, phase 2 is near-exact."""
        X, _, (theta1, theta2) = blobs_grid_9
        centroids = (theta1[:, None, :] + theta2[None, :, :]).reshape(9, 2)
        thetas, error = decompose_centroids(
            centroids, (3, 3), aggregator="sum", random_state=0
        )
        assert error < 1e-6 * np.sum(centroids**2)

    def test_joint_optimization_beats_naive_on_generic_data(self):
        """Section 5's motivation: two-phase is dominated by KR-k-Means."""
        rng = np.random.default_rng(4)
        X = rng.uniform(0.5, 3.0, size=(300, 4))
        naive = NaiveKhatriRao((3, 3), aggregator="product", n_init=10,
                               random_state=0).fit(X)
        joint = KhatriRaoKMeans((3, 3), aggregator="product", n_init=10,
                                random_state=0).fit(X)
        assert joint.inertia_ <= naive.inertia_ * 1.05

    def test_not_fitted(self):
        model = NaiveKhatriRao((2, 2))
        with pytest.raises(NotFittedError):
            model.centroids()
        with pytest.raises(NotFittedError):
            model.parameter_count()

    def test_fit_predict(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        labels = NaiveKhatriRao((3, 3), n_init=2, random_state=0).fit_predict(X)
        assert labels.shape == (X.shape[0],)
        assert labels.max() < 9
