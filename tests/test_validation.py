"""Unit tests for the shared validation helpers."""

import numpy as np
import pytest

from repro._validation import (
    check_array,
    check_cardinalities,
    check_in,
    check_positive_int,
    check_random_state,
)
from repro.exceptions import ValidationError


class TestCheckArray:
    def test_converts_lists(self):
        result = check_array([[1, 2], [3, 4]])
        assert result.dtype == np.float64
        assert result.shape == (2, 2)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValidationError, match="2-dimensional"):
            check_array([1.0, 2.0])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="NaN"):
            check_array([[np.nan, 1.0]])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_array([[np.inf, 1.0]])

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValidationError, match="at least 3"):
            check_array([[1.0], [2.0]], min_samples=3)

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_array([["a", "b"]])

    def test_returns_contiguous(self):
        X = np.asfortranarray(np.ones((3, 4)))
        assert check_array(X).flags["C_CONTIGUOUS"]

    def test_allow_empty(self):
        result = check_array(np.empty((0, 3)), allow_empty=True)
        assert result.shape == (0, 3)


class TestCheckPositiveInt:
    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(5), "x") == 5

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.0, "x")

    def test_rejects_below_minimum(self):
        with pytest.raises(ValidationError, match=">= 2"):
            check_positive_int(1, "x", minimum=2)


class TestCheckIn:
    def test_accepts_member(self):
        assert check_in("a", "x", ("a", "b")) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ValidationError):
            check_in("c", "x", ("a", "b"))


class TestCheckCardinalities:
    def test_accepts_tuple(self):
        assert check_cardinalities((3, 4)) == (3, 4)

    def test_accepts_list_of_numpy_ints(self):
        assert check_cardinalities([np.int64(2), np.int64(5)]) == (2, 5)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            check_cardinalities(())

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_cardinalities((3, 0))

    def test_rejects_non_integers(self):
        with pytest.raises(ValidationError):
            check_cardinalities("ab")


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_is_reproducible(self):
        a = check_random_state(42).random(3)
        b = check_random_state(42).random(3)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_legacy_random_state(self):
        legacy = np.random.RandomState(0)
        assert isinstance(check_random_state(legacy), np.random.Generator)

    def test_rejects_garbage(self):
        with pytest.raises(ValidationError):
            check_random_state("seed")
