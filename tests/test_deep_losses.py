"""Tests for the DKM/IDEC losses and the differentiable KR materialization."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.deep.losses import (
    dkm_loss,
    idec_loss,
    idec_target_distribution,
    materialize_centroid_tensor,
    pairwise_sq_distances,
)
from repro.exceptions import ValidationError
from repro.linalg import khatri_rao_combine


class TestPairwiseDistances:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        Z = rng.normal(size=(5, 3))
        M = rng.normal(size=(4, 3))
        out = pairwise_sq_distances(Tensor(Z), Tensor(M)).numpy()
        expected = ((Z[:, None, :] - M[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(out, expected)

    def test_rejects_non_2d(self):
        with pytest.raises(ValidationError):
            pairwise_sq_distances(Tensor(np.ones(3)), Tensor(np.ones((2, 3))))

    def test_gradient_flows_to_both(self):
        Z = Tensor(np.random.default_rng(1).normal(size=(5, 3)), requires_grad=True)
        M = Tensor(np.random.default_rng(2).normal(size=(2, 3)), requires_grad=True)
        pairwise_sq_distances(Z, M).sum().backward()
        assert Z.grad is not None and M.grad is not None


class TestMaterialize:
    @pytest.mark.parametrize("aggregator", ["sum", "product"])
    def test_matches_numpy_combine(self, aggregator):
        rng = np.random.default_rng(0)
        thetas_np = [rng.normal(size=(3, 4)), rng.normal(size=(2, 4))]
        thetas = [Tensor(t) for t in thetas_np]
        out = materialize_centroid_tensor(thetas, aggregator).numpy()
        np.testing.assert_allclose(out, khatri_rao_combine(thetas_np, aggregator))

    def test_three_sets(self):
        rng = np.random.default_rng(1)
        thetas_np = [rng.normal(size=(2, 3)) for _ in range(3)]
        out = materialize_centroid_tensor([Tensor(t) for t in thetas_np], "sum").numpy()
        np.testing.assert_allclose(out, khatri_rao_combine(thetas_np, "sum"))

    def test_gradients_scatter_to_protocentroids(self):
        rng = np.random.default_rng(2)
        t1 = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        t2 = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        M = materialize_centroid_tensor([t1, t2], "sum")
        M.sum().backward()
        # Each protocentroid of set 1 affects 3 centroids, of set 2 affects 2.
        np.testing.assert_allclose(t1.grad, 3 * np.ones((2, 3)))
        np.testing.assert_allclose(t2.grad, 2 * np.ones((3, 3)))

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            materialize_centroid_tensor([], "sum")


class TestDKMLoss:
    def test_approaches_kmeans_objective_for_large_alpha(self):
        rng = np.random.default_rng(0)
        Z = rng.normal(size=(30, 2))
        M = rng.normal(size=(4, 2))
        loss = dkm_loss(Tensor(Z), Tensor(M), alpha=1e6).item()
        distances = ((Z[:, None] - M[None]) ** 2).sum(axis=2)
        hard = distances.min(axis=1).mean()
        assert loss == pytest.approx(hard, rel=1e-3)

    def test_stable_at_paper_temperature(self):
        rng = np.random.default_rng(1)
        Z = Tensor(rng.normal(size=(20, 5)) * 10, requires_grad=True)
        M = Tensor(rng.normal(size=(3, 5)) * 10, requires_grad=True)
        loss = dkm_loss(Z, M, alpha=1000.0)
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.all(np.isfinite(M.grad))

    def test_zero_when_points_on_centroids(self):
        Z = np.array([[0.0, 0.0], [5.0, 5.0]])
        loss = dkm_loss(Tensor(Z), Tensor(Z.copy()), alpha=1000.0)
        assert loss.item() == pytest.approx(0.0, abs=1e-8)

    def test_gradient_pulls_centroid_toward_points(self):
        Z = Tensor(np.zeros((10, 2)))
        M = Tensor(np.array([[1.0, 1.0]]), requires_grad=True)
        dkm_loss(Z, M, alpha=1.0).backward()
        assert np.all(M.grad > 0)  # moving M down-left reduces the loss


class TestIDECLoss:
    def test_target_distribution_normalized(self):
        rng = np.random.default_rng(0)
        q = rng.dirichlet(np.ones(4), size=20)
        p = idec_target_distribution(q)
        np.testing.assert_allclose(p.sum(axis=1), np.ones(20))
        assert np.all(p >= 0)

    def test_target_sharpens_confident_assignments(self):
        # Sharpening acts relative to cluster frequencies: rows more
        # confident than the average get pushed further toward their cluster.
        q = np.array([[0.8, 0.2], [0.7, 0.3], [0.55, 0.45]])
        p = idec_target_distribution(q)
        assert p[0, 0] > q[0, 0]
        assert p[2, 0] < q[2, 0]  # the least confident row is softened

    def test_target_is_fixed_point_for_identical_rows(self):
        # When every row equals the cluster-frequency vector, the frequency
        # normalization exactly offsets the squaring.
        q = np.array([[0.6, 0.4], [0.6, 0.4]])
        np.testing.assert_allclose(idec_target_distribution(q), q)

    def test_loss_nonnegative(self):
        rng = np.random.default_rng(1)
        Z = Tensor(rng.normal(size=(15, 3)))
        M = Tensor(rng.normal(size=(4, 3)))
        assert idec_loss(Z, M).item() >= -1e-9

    def test_gradient_descent_reduces_loss(self):
        # Optimizing centroids under the IDEC loss sharpens the Student's-t
        # assignments: the loss decreases along the gradient path.
        rng = np.random.default_rng(2)
        Z = Tensor(np.vstack([rng.normal(0, 0.2, (15, 2)),
                              rng.normal(4, 0.2, (15, 2))]))
        M = Tensor(np.array([[1.0, 1.0], [3.0, 3.0]]), requires_grad=True)
        initial = idec_loss(Z, M).item()
        for _ in range(100):
            M.zero_grad()
            loss = idec_loss(Z, M)
            loss.backward()
            M.data -= 0.5 * M.grad
        assert idec_loss(Z, M).item() < initial

    def test_gradients_flow(self):
        rng = np.random.default_rng(3)
        Z = Tensor(rng.normal(size=(12, 3)), requires_grad=True)
        M = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        idec_loss(Z, M).backward()
        assert np.all(np.isfinite(Z.grad))
        assert np.all(np.isfinite(M.grad))
