"""Unit and property tests for the Khatri-Rao operators and index maps."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.linalg import (
    flat_to_tuple,
    khatri_rao_combine,
    khatri_rao_product,
    num_combinations,
    tuple_to_flat,
)

cardinalities_strategy = st.lists(st.integers(1, 5), min_size=1, max_size=4).map(tuple)


class TestNumCombinations:
    def test_product(self):
        assert num_combinations((3, 4, 2)) == 24

    def test_single_set(self):
        assert num_combinations((7,)) == 7

    @given(cardinalities_strategy)
    @settings(max_examples=50, deadline=None)
    def test_matches_numpy_prod(self, cards):
        assert num_combinations(cards) == int(np.prod(cards))


class TestIndexMaps:
    @given(cardinalities_strategy, st.data())
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, cards, data):
        flat = data.draw(st.integers(0, num_combinations(cards) - 1))
        assert tuple_to_flat(flat_to_tuple(flat, cards), cards) == flat

    def test_c_order_last_fastest(self):
        # With cards (2, 3) the flat order is (0,0),(0,1),(0,2),(1,0)...
        assert flat_to_tuple(0, (2, 3)) == (0, 0)
        assert flat_to_tuple(1, (2, 3)) == (0, 1)
        assert flat_to_tuple(3, (2, 3)) == (1, 0)

    def test_matches_numpy_unravel(self):
        cards = (3, 4, 2)
        for flat in range(num_combinations(cards)):
            assert flat_to_tuple(flat, cards) == tuple(
                int(i) for i in np.unravel_index(flat, cards)
            )

    def test_out_of_range_flat(self):
        with pytest.raises(ValidationError):
            flat_to_tuple(6, (2, 3))

    def test_out_of_range_tuple(self):
        with pytest.raises(ValidationError):
            tuple_to_flat((2, 0), (2, 3))

    def test_wrong_arity(self):
        with pytest.raises(ValidationError):
            tuple_to_flat((0,), (2, 3))


class TestKhatriRaoCombine:
    def test_sum_two_sets(self):
        a = np.array([[0.0], [1.0]])
        b = np.array([[10.0], [20.0], [30.0]])
        out = khatri_rao_combine([a, b], "sum")
        np.testing.assert_allclose(out.ravel(), [10, 20, 30, 11, 21, 31])

    def test_product_two_sets(self):
        a = np.array([[2.0], [3.0]])
        b = np.array([[5.0], [7.0]])
        out = khatri_rao_combine([a, b], "product")
        np.testing.assert_allclose(out.ravel(), [10, 14, 15, 21])

    def test_single_set_is_identity(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(khatri_rao_combine([a], "sum"), a)

    def test_row_count(self):
        sets = [np.ones((2, 3)), np.ones((3, 3)), np.ones((4, 3))]
        assert khatri_rao_combine(sets, "sum").shape == (24, 3)

    def test_ordering_matches_index_maps(self):
        rng = np.random.default_rng(0)
        cards = (2, 3, 2)
        thetas = [rng.normal(size=(h, 4)) for h in cards]
        combined = khatri_rao_combine(thetas, "sum")
        for flat in range(num_combinations(cards)):
            indices = flat_to_tuple(flat, cards)
            expected = sum(theta[i] for theta, i in zip(thetas, indices))
            np.testing.assert_allclose(combined[flat], expected)

    def test_product_ordering_matches_index_maps(self):
        rng = np.random.default_rng(1)
        cards = (3, 2)
        thetas = [rng.uniform(0.5, 2.0, size=(h, 3)) for h in cards]
        combined = khatri_rao_combine(thetas, "product")
        for flat in range(num_combinations(cards)):
            i, j = flat_to_tuple(flat, cards)
            np.testing.assert_allclose(combined[flat], thetas[0][i] * thetas[1][j])

    def test_mismatched_feature_dims(self):
        with pytest.raises(ValidationError, match="feature dimension"):
            khatri_rao_combine([np.ones((2, 3)), np.ones((2, 4))], "sum")

    def test_requires_2d_sets(self):
        with pytest.raises(ValidationError):
            khatri_rao_combine([np.ones(3)], "sum")

    def test_empty_input(self):
        with pytest.raises(ValidationError):
            khatri_rao_combine([], "sum")

    @given(
        st.integers(1, 4), st.integers(1, 4), st.integers(1, 3),
        st.sampled_from(["sum", "product"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_brute_force_equivalence(self, h1, h2, m, aggregator):
        rng = np.random.default_rng(h1 * 100 + h2 * 10 + m)
        t1 = rng.normal(size=(h1, m))
        t2 = rng.normal(size=(h2, m))
        combined = khatri_rao_combine([t1, t2], aggregator)
        op = (lambda a, b: a + b) if aggregator == "sum" else (lambda a, b: a * b)
        brute = np.array([op(t1[i], t2[j]) for i in range(h1) for j in range(h2)])
        np.testing.assert_allclose(combined, brute)


class TestKhatriRaoProduct:
    def test_known_value(self):
        A = np.array([[1.0, 2.0]])
        B = np.array([[3.0, 4.0], [5.0, 6.0]])
        np.testing.assert_allclose(
            khatri_rao_product(A, B), [[3.0, 8.0], [5.0, 12.0]]
        )

    def test_matches_scipy(self):
        from scipy.linalg import khatri_rao as scipy_kr

        rng = np.random.default_rng(3)
        A = rng.normal(size=(4, 3))
        B = rng.normal(size=(5, 3))
        np.testing.assert_allclose(khatri_rao_product(A, B), scipy_kr(A, B))

    def test_column_mismatch(self):
        with pytest.raises(ValidationError):
            khatri_rao_product(np.ones((2, 2)), np.ones((2, 3)))

    def test_connection_to_combine(self):
        # Rows-as-protocentroids with product aggregator ≙ Khatri-Rao product
        # of the transposed matrices (the naming connection of Section 3).
        rng = np.random.default_rng(5)
        t1 = rng.normal(size=(2, 3))
        t2 = rng.normal(size=(4, 3))
        combined = khatri_rao_combine([t1, t2], "product")
        np.testing.assert_allclose(combined, khatri_rao_product(t1, t2))
