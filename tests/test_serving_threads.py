"""Thread-safety regression: concurrent reads of one shared DataSummary.

The contract the micro-batcher and the threaded HTTP server rely on:
``DataSummary.assign``/``inertia``/``score`` are pure reads of the stored
protocentroids, so concurrent calls from a thread pool on one shared
summary return **bit-identical** results to serial calls — same labels
array, ``==``-equal inertia float, at both serving dtypes.  If someone
ever adds hidden mutable state (a cached centroid grid, a scratch
buffer) to the read path, this suite is the tripwire.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import KhatriRaoKMeans, summarize
from repro.datasets import make_blobs

N_THREADS = 8
N_CALLS = 64


@pytest.fixture(scope="module", params=["float64", "float32"])
def shared(request):
    X, _ = make_blobs(400, n_clusters=9, random_state=0)
    model = KhatriRaoKMeans((3, 3), n_init=3, random_state=0).fit(X)
    summary = summarize(model).astype(request.param)
    # The serving request shape: many distinct small row blocks.
    blocks = [X[i::N_CALLS][:40] for i in range(N_CALLS)]
    return summary, blocks


def test_concurrent_assign_bit_identical_to_serial(shared):
    summary, blocks = shared
    serial = [summary.assign(b) for b in blocks]
    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        concurrent = list(pool.map(summary.assign, blocks))
    for s, c in zip(serial, concurrent):
        np.testing.assert_array_equal(s, c)
        assert c.dtype == s.dtype


def test_concurrent_inertia_bit_identical_to_serial(shared):
    summary, blocks = shared
    serial = [summary.inertia(b) for b in blocks]
    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        concurrent = list(pool.map(summary.inertia, blocks))
    for s, c in zip(serial, concurrent):
        assert s == c  # exact float equality, not approx


def test_concurrent_mixed_ops_bit_identical(shared):
    """assign, inertia and score interleaved across the pool."""
    summary, blocks = shared

    def call(i):
        block = blocks[i % len(blocks)]
        if i % 3 == 0:
            return ("assign", summary.assign(block))
        if i % 3 == 1:
            return ("inertia", summary.inertia(block))
        labels, distances = summary.score(block)
        return ("score", (labels, distances))

    serial = [call(i) for i in range(2 * N_CALLS)]
    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        concurrent = list(pool.map(call, range(2 * N_CALLS)))
    for (op_s, s), (op_c, c) in zip(serial, concurrent):
        assert op_s == op_c
        if op_s == "assign":
            np.testing.assert_array_equal(s, c)
        elif op_s == "inertia":
            assert s == c
        else:
            np.testing.assert_array_equal(s[0], c[0])
            np.testing.assert_array_equal(s[1], c[1])


def test_repeated_concurrent_rounds_are_stable(shared):
    """Many rounds of the same concurrent workload agree round-to-round
    (no order-dependent scratch state accumulating across calls)."""
    summary, blocks = shared
    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        first = list(pool.map(summary.assign, blocks))
        for _ in range(3):
            again = list(pool.map(summary.assign, blocks))
            for a, b in zip(first, again):
                np.testing.assert_array_equal(a, b)
