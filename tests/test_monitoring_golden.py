"""The golden-dataset regression harness and its committed scenarios."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.exceptions import GoldenMismatchError, ValidationError
from repro.monitoring import (
    load_scenario,
    record_scenario,
    run_scenario,
    run_suite,
)
from repro.runtime.checkpoint import read_checkpoint, write_checkpoint

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"


def small_scenario(path, **overrides):
    """Record a tiny deterministic scenario for tamper tests."""
    rng = np.random.default_rng(2)
    pool = rng.normal(size=(60, 2))
    idx = [rng.choice(60, size=20, replace=False) for _ in range(6)]
    kwargs = dict(
        name="tiny",
        description="tamper fixture",
        model_config={"cardinalities": [2, 2], "random_state": 0},
        engine_config={"warmup_steps": 2},
        policy_config={"name": "alert_only"},
        X=np.vstack([pool[i] for i in idx]),
        offsets=np.arange(0, 121, 20),
        index=np.concatenate(idx).astype(np.int64),
    )
    kwargs.update(overrides)
    return record_scenario(path, **kwargs)


class TestCommittedGoldens:
    def test_suite_replays_exactly(self, tmp_path):
        report = run_suite(GOLDEN_DIR, report_path=tmp_path / "report.json")
        assert report["status"] == "pass"
        assert report["n_scenarios"] == 3
        written = json.loads((tmp_path / "report.json").read_text())
        assert written["status"] == "pass"
        assert {s["scenario"] for s in written["scenarios"]} == {
            "stationary_f64_indexed_alert_only",
            "meanshift_f64_indexed_refine",
            "meanshift_f32_anonymous_refit",
        }

    def test_stationary_control_is_quiet(self):
        scenario = load_scenario(
            GOLDEN_DIR / "stationary_f64_indexed_alert_only.npz"
        )
        assert scenario.expected["timeline"] == []
        # ... while the bounds actually engaged: fractions decay.
        assert min(scenario.expected["fractions"]) < 1.0

    def test_shift_scenarios_pin_interventions(self):
        refine = load_scenario(GOLDEN_DIR / "meanshift_f64_indexed_refine.npz")
        actions = [entry for entry in refine.expected["timeline"]
                   if entry["event"] == "action"]
        assert actions and all(a["kind"] == "refine" for a in actions)
        refit = load_scenario(GOLDEN_DIR / "meanshift_f32_anonymous_refit.npz")
        actions = [entry for entry in refit.expected["timeline"]
                   if entry["event"] == "action"]
        assert actions and all(a["kind"] == "refit" for a in actions)
        # Anonymous stream on a pruning-capable estimator: every step is
        # fully re-scored and logged as 1.0 (the normalized contract).
        assert all(f == 1.0 for f in refit.expected["fractions"])
        assert refit.expected_thetas[0].dtype == np.float32

    def test_generator_is_reproducible(self, tmp_path):
        # Regenerating into a scratch directory reproduces the committed
        # expectations byte for byte (modulo the archive container).
        import sys
        sys.path.insert(0, str(GOLDEN_DIR))
        try:
            import make_goldens
            regenerated = make_goldens.build_all(tmp_path)
        finally:
            sys.path.remove(str(GOLDEN_DIR))
        for path in regenerated:
            fresh = load_scenario(path)
            committed = load_scenario(GOLDEN_DIR / path.name)
            assert fresh.expected == committed.expected
            for theta_a, theta_b in zip(
                fresh.expected_thetas, committed.expected_thetas
            ):
                assert theta_a.tobytes() == theta_b.tobytes()


class TestHarness:
    def test_record_then_run_passes(self, tmp_path):
        path = small_scenario(tmp_path / "tiny.npz")
        entry = run_scenario(path)
        assert entry["status"] == "pass"
        assert entry["mismatches"] == []

    def test_offsets_validation(self, tmp_path):
        with pytest.raises(ValidationError, match="offsets"):
            small_scenario(tmp_path / "bad.npz",
                           offsets=np.array([0, 20, 40]))

    def test_non_scenario_archive_is_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        write_checkpoint(path, {"kind": "something-else"},
                         {"X": np.zeros((2, 2))})
        with pytest.raises(GoldenMismatchError, match="not a monitoring"):
            load_scenario(path)

    @pytest.mark.parametrize("section, mutate", [
        ("timeline", lambda exp: exp["timeline"].append(
            {"event": "alert", "kind": "inertia_regression",
             "severity": "warning", "step": 99, "value": 1.0,
             "baseline": 1.0, "threshold": 1.0, "message": "x"})),
        ("fractions", lambda exp: exp["fractions"].__setitem__(0, 0.123)),
        ("n_steps", lambda exp: exp.__setitem__("n_steps", 99)),
    ])
    def test_any_behavioral_delta_fails_typed(self, tmp_path, section,
                                              mutate):
        path = small_scenario(tmp_path / "tiny.npz")
        header, arrays = read_checkpoint(path)
        mutate(header["expected"])
        header.pop("checksums")
        header.pop("format_version")
        write_checkpoint(path, header, dict(arrays))
        with pytest.raises(GoldenMismatchError) as excinfo:
            run_suite([path])
        assert any(section in line for line in excinfo.value.mismatches)

    def test_theta_delta_fails(self, tmp_path):
        path = small_scenario(tmp_path / "tiny.npz")
        header, arrays = read_checkpoint(path)
        arrays = dict(arrays)
        arrays["expected_theta_0"] = arrays["expected_theta_0"] + 1e-9
        header.pop("checksums")
        header.pop("format_version")
        write_checkpoint(path, header, arrays)
        with pytest.raises(GoldenMismatchError, match="theta_0"):
            run_suite([path])

    def test_report_written_even_on_failure(self, tmp_path):
        path = small_scenario(tmp_path / "tiny.npz")
        header, arrays = read_checkpoint(path)
        header["expected"]["n_steps"] = 99
        header.pop("checksums")
        header.pop("format_version")
        write_checkpoint(path, header, dict(arrays))
        report_path = tmp_path / "report.json"
        with pytest.raises(GoldenMismatchError):
            run_suite([path], report_path=report_path)
        report = json.loads(report_path.read_text())
        assert report["status"] == "fail"
        assert report["n_failed"] == 1

    def test_empty_directory_is_typed(self, tmp_path):
        with pytest.raises(ValidationError, match="no golden"):
            run_suite(tmp_path)


class TestCliMonitor:
    def test_monitor_passes_on_committed_goldens(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        code = cli_main(["monitor", "--goldens", str(GOLDEN_DIR),
                         "--report", str(report)])
        assert code == 0
        out = capsys.readouterr().out
        assert "3 golden scenario(s) replayed exactly" in out
        assert json.loads(report.read_text())["status"] == "pass"

    def test_monitor_fails_on_delta(self, tmp_path, capsys):
        path = small_scenario(tmp_path / "tiny.npz")
        header, arrays = read_checkpoint(path)
        header["expected"]["n_steps"] = 99
        header.pop("checksums")
        header.pop("format_version")
        write_checkpoint(path, header, dict(arrays))
        report = tmp_path / "report.json"
        code = cli_main(["monitor", "--goldens", str(tmp_path),
                         "--report", str(report)])
        assert code == 1
        assert "behavioral delta" in capsys.readouterr().out
        assert json.loads(report.read_text())["status"] == "fail"
