"""Quickstart: summarize a dataset with Khatri-Rao-k-Means.

Fits standard k-Means and Khatri-Rao-k-Means on 2-D Gaussian blobs with 36
underlying clusters and compares summary size and quality.  Khatri-Rao
clustering represents the 36 centroids as all pairwise sums of two sets of
6 "protocentroids" — 12 stored vectors instead of 36.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import KhatriRaoKMeans, KMeans
from repro.datasets import make_blobs
from repro.metrics import adjusted_rand_index, unsupervised_clustering_accuracy
from repro.utils import Timer


def main() -> None:
    X, y = make_blobs(3000, n_features=2, n_clusters=36, random_state=0)
    print(f"dataset: {X.shape[0]} points, {X.shape[1]} features, 36 clusters\n")

    # Khatri-Rao-k-Means: two sets of 6 protocentroids -> 36 centroids.
    # assignment="auto" (the default) routes the sum aggregator through the
    # factored kernel, which never materializes the 36 centroids during
    # assignment; assignment="materialized" forces the classic O(n·k·m) path.
    # pruning="auto" (also the default) additionally keeps Hamerly distance
    # bounds across Lloyd iterations, so late iterations re-score only the
    # few points whose labels could still change — same labels, less work;
    # pruning="none" re-scores every point every iteration.
    # update="auto" (also the default) picks the update kernel the same way:
    # the closed-form protocentroid update assembles each set's numerator
    # from per-set-pair contingency count tables (C_qr @ theta_r) instead of
    # gathering a per-point "rest" matrix — the update (the per-iteration
    # floor once assignment is factored and pruned) keeps one bincount pass
    # over the data per set but drops every full-size float temporary, a
    # several-fold constant-factor win; update="gather" forces the reference
    # per-point arithmetic (the two agree to last-ulp rounding drift).
    kr = KhatriRaoKMeans((6, 6), aggregator="sum", n_init=20, random_state=0,
                         assignment="auto", update="auto", pruning="auto")
    with Timer() as kr_time:
        kr.fit(X)
    kr_materialized = KhatriRaoKMeans((6, 6), aggregator="sum", n_init=20,
                                      random_state=0, assignment="materialized",
                                      pruning="none")
    with Timer() as materialized_time:
        kr_materialized.fit(X)
    print(f"factored+pruned fit: {kr_time.elapsed:.2f}s, "
          f"materialized unpruned: {materialized_time.elapsed:.2f}s "
          f"(identical labels: "
          f"{bool((kr.labels_ == kr_materialized.labels_).all())})\n")

    # Baselines: k-Means with the same parameter budget (12 centroids) and
    # with the same cluster count (36 centroids).
    km_budget = KMeans(12, n_init=20, random_state=0).fit(X)
    km_full = KMeans(36, n_init=20, random_state=0).fit(X)

    rows = [
        ("Khatri-Rao-k-Means (6+6)", kr.inertia_, kr.parameter_count(),
         kr.labels_),
        ("k-Means (12 centroids)", km_budget.inertia_,
         km_budget.parameter_count(), km_budget.labels_),
        ("k-Means (36 centroids)", km_full.inertia_,
         km_full.parameter_count(), km_full.labels_),
    ]
    header = f"{'method':<28}{'inertia':>12}{'params':>8}{'ARI':>7}{'ACC':>7}"
    print(header)
    print("-" * len(header))
    for name, inertia, params, labels in rows:
        ari = adjusted_rand_index(y, labels)
        acc = unsupervised_clustering_accuracy(y, labels)
        print(f"{name:<28}{inertia:>12.1f}{params:>8}{ari:>7.2f}{acc:>7.2f}")

    print(
        "\nWith the same 12 stored vectors, the Khatri-Rao summary represents"
        "\nall 36 clusters; plain k-Means at that budget merges them."
    )


if __name__ == "__main__":
    main()
