"""Figure 4 scenario: generating and detecting Khatri-Rao structure.

Generates 2-D datasets whose cluster centroids are exactly the Khatri-Rao
sum / product of two protocentroid sets, then (a) verifies that
Khatri-Rao-k-Means recovers the structure, and (b) uses the Section 8
aggregator-selection heuristic to detect whether a centroid grid is
additive or multiplicative.

Run:  python examples/khatri_rao_structure.py
"""

from __future__ import annotations

import numpy as np

from repro import KhatriRaoKMeans
from repro.core import suggest_aggregator
from repro.datasets import make_khatri_rao_blobs
from repro.linalg import khatri_rao_combine
from repro.metrics import adjusted_rand_index


def main() -> None:
    for aggregator in ("sum", "product"):
        X, y, thetas = make_khatri_rao_blobs(
            (3, 3), n_samples=900, aggregator=aggregator,
            cluster_std=0.08, random_state=1,
        )
        # assignment="auto" exploits the Khatri-Rao structure where the
        # aggregator allows it: the sum aggregator assigns via per-set Gram
        # matrices without ever materializing the 9 centroids, while the
        # product aggregator transparently falls back to the materialized
        # path (its distances don't decompose over the sets).
        model = KhatriRaoKMeans((3, 3), aggregator=aggregator, n_init=30,
                                random_state=0, assignment="auto").fit(X)
        ari = adjusted_rand_index(y, model.labels_)
        kernel = "factored" if model.uses_factored_assignment else "materialized"
        print(f"⊕ = {aggregator:<7}: KR-k-Means ARI on KR-structured data "
              f"= {ari:.3f} "
              f"({model.n_protocentroids} stored vectors, "
              f"{model.n_clusters} clusters, {kernel} assignment)")

        # The Section 8 heuristic recovers the generating aggregator from
        # the (grid-ordered) true centroids.
        true_grid = khatri_rao_combine(thetas, aggregator)
        detected = suggest_aggregator(true_grid, (3, 3))
        print(f"             aggregator heuristic on the true centroid grid "
              f"-> {detected!r}")

        # Difference invariance, the mechanism behind the heuristic: in the
        # additive model μ[i,j] − μ[i',j] does not depend on j.
        grid = true_grid.reshape(3, 3, 2)
        diffs = grid[1] - grid[0]
        spread = float(np.var(diffs, axis=0).mean())
        print(f"             variance of μ[1,j]-μ[0,j] across j: {spread:.4f}\n")


if __name__ == "__main__":
    main()
