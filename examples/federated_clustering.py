"""Case study (Figure 10): cutting communication costs in federated k-Means.

Simulates a federated environment with 10 clients holding non-IID shards of
digit images, and compares FkM (server broadcasts all k centroids each
round) against Khatri-Rao-FkM (server broadcasts only the protocentroid
sets).  Reports the inertia reachable per communication budget.

Run:  python examples/federated_clustering.py
"""

from __future__ import annotations

from repro.datasets import make_federated_digits
from repro.federated import FederatedKMeans, KhatriRaoFederatedKMeans


def main() -> None:
    n_clients, rounds = 10, 6
    shards = make_federated_digits(n_clients, 150, side=14, random_state=0)
    shards = [(X + 0.1, y) for X, y in shards]  # positive range for product ⊕
    print(f"{n_clients} clients, shards of ~150 images each, "
          f"{rounds} communication rounds\n")

    fkm = FederatedKMeans(16, n_rounds=rounds, random_state=0).fit(shards)
    kr = KhatriRaoFederatedKMeans((4, 4), aggregator="product",
                                  n_rounds=rounds, random_state=0).fit(shards)

    print("FkM broadcasts 16 centroid vectors per round;")
    print("Khatri-Rao-FkM broadcasts 4+4 protocentroid vectors "
          "for the same 16 clusters.\n")

    header = (f"{'round':>6} | {'FkM KiB':>10}{'FkM inertia':>13} | "
              f"{'KR KiB':>10}{'KR inertia':>13}")
    print(header)
    print("-" * len(header))
    print(f"{'init':>6} | {'-':>10}{fkm.initial_inertia_:>13.1f} | "
          f"{'-':>10}{kr.initial_inertia_:>13.1f}")
    for i in range(rounds):
        print(f"{i + 1:>6} | {fkm.history_.communication_bytes[i] / 1024:>10.0f}"
              f"{fkm.history_.inertia[i]:>13.1f} | "
              f"{kr.history_.communication_bytes[i] / 1024:>10.0f}"
              f"{kr.history_.inertia[i]:>13.1f}")

    saved = 1 - kr.history_.communication_bytes[-1] / fkm.history_.communication_bytes[-1]
    print(f"\nKhatri-Rao-FkM used {100 * saved:.0f}% less server->client "
          "traffic for the same number of rounds and clusters.")


if __name__ == "__main__":
    main()
