"""Section 8 scenario: choosing the Khatri-Rao configuration.

Demonstrates the design-choice toolkit:

* balanced factorizations of a target cluster count,
* the optimal number of protocentroid sets for a vector budget
  (Proposition 8.1) and the bounds of Proposition 8.2,
* BIC-driven growth of the protocentroid sets (Khatri-Rao X-Means).

Run:  python examples/model_selection.py
"""

from __future__ import annotations

from repro.core import (
    KhatriRaoXMeans,
    balanced_factor_pair,
    balanced_factorization,
    max_centroids_for_budget,
    optimal_num_sets,
    sets_bounds_for_k,
)
from repro.datasets import make_blobs


def main() -> None:
    print("Balanced factor pairs (the evaluation's h1*h2 = k rule):")
    for k in (40, 100, 36, 15):
        print(f"  k={k:>4} -> h1,h2 = {balanced_factor_pair(k)}")

    print("\nCentroids representable with a budget of 12 vectors:")
    for p in (2, 3, 4, 6):
        print(f"  p={p}: {max_centroids_for_budget(12, p):>3} centroids "
              f"({balanced_factorization(max_centroids_for_budget(12, p), p)})")
    print(f"  Proposition 8.1 optimum: p = {optimal_num_sets(12)}")

    lower, upper = sets_bounds_for_k(100, 10)
    print(f"\nProposition 8.2: representing k=100 clusters with sets of >= 10 "
          f"protocentroids needs between {lower} and {upper} sets.")

    print("\nBIC-driven growth (Khatri-Rao X-Means) on 9-cluster blobs:")
    X, _ = make_blobs(600, n_features=2, n_clusters=9, cluster_std=0.15,
                      random_state=5)
    model = KhatriRaoXMeans(initial_cardinalities=(2, 2), max_vectors=8,
                            n_init=5, random_state=0).fit(X)
    for cards, bic in model.history_:
        marker = " <- selected" if cards == model.cardinalities_ else ""
        print(f"  cardinalities {cards}: BIC = {bic:12.1f}{marker}")
    print(f"  final: {model.cardinalities_} "
          f"({int(__import__('numpy').prod(model.cardinalities_))} clusters "
          f"from {sum(model.cardinalities_)} vectors)")


if __name__ == "__main__":
    main()
