"""Summarization design space: sampling, PCA, k-Means and Khatri-Rao.

The paper situates Khatri-Rao clustering among broader summarization
strategies (Section 2: "aggregation, dimensionality reduction, or
sampling").  This example compares all of them at the *same parameter
budget* on data with many underlying clusters, and renders the Khatri-Rao
clustering as an ASCII scatter plot.

Run:  python examples/summarization_baselines.py
"""

from __future__ import annotations

import numpy as np

from repro import KhatriRaoKMeans
from repro.applications import compare_summaries
from repro.datasets import make_blobs
from repro.viz import ascii_bar_chart, ascii_scatter


def main() -> None:
    X, y = make_blobs(2000, n_features=2, n_clusters=25, cluster_std=0.4,
                      random_state=0)
    print("2000 points, 25 clusters; budget = 10 stored vectors "
          "(two sets of 5 protocentroids)\n")

    rows = compare_summaries(X, (5, 5), n_init=10, random_state=0)
    print("summed squared error by summarization strategy:")
    print(ascii_bar_chart(
        [row.method for row in rows],
        [row.inertia for row in rows],
        width=40,
    ))

    model = KhatriRaoKMeans((5, 5), n_init=10, random_state=0).fit(X)
    print("\nKhatri-Rao clustering of the dataset "
          "(M = reconstructed centroids):")
    subsample = np.random.default_rng(0).choice(X.shape[0], 400, replace=False)
    print(ascii_scatter(X[subsample], model.labels_[subsample],
                        markers=model.centroids(), width=70, height=24))


if __name__ == "__main__":
    main()
