"""Khatri-Rao deep clustering: compress both centroids and the autoencoder.

Trains DKM and its Khatri-Rao variant on an optdigits-like dataset.  The KR
variant constrains the latent centroids to pairwise sums of protocentroids
AND reparameterizes the inner autoencoder layers as Hadamard products of
low-rank factors (Eq. 6 of the paper), then reports accuracy and the
parameter ratio.

Run:  python examples/deep_clustering.py
"""

from __future__ import annotations

from repro.datasets import load_dataset
from repro.deep import DKM, KhatriRaoDKM
from repro.metrics import unsupervised_clustering_accuracy


def main() -> None:
    ds = load_dataset("optdigits", scale=0.15, random_state=0)
    print(f"optdigits-like: {ds.n_samples} images, {ds.n_features} features, "
          f"{ds.n_labels} digit clusters\n")

    config = dict(
        hidden_dims=(64, 32, 10),
        pretrain_epochs=20,
        clustering_epochs=10,
        batch_size=256,
        kmeans_n_init=10,
        random_state=0,
    )

    print("training DKM (dense autoencoder, 10 latent centroids)...")
    dkm = DKM(ds.n_labels, **config).fit(ds.data)

    print("training Khatri-Rao DKM (compressed autoencoder, 5+2 "
          "protocentroids)...\n")
    kr = KhatriRaoDKM((5, 2), **config).fit(ds.data)

    header = f"{'model':<18}{'ACC':>7}{'params':>9}{'ratio':>7}"
    print(header)
    print("-" * len(header))
    for name, model in (("DKM", dkm), ("Khatri-Rao DKM", kr)):
        acc = unsupervised_clustering_accuracy(ds.labels, model.labels_)
        result = model.result()
        print(f"{name:<18}{acc:>7.3f}{result.parameter_count:>9}"
              f"{result.parameter_ratio:>7.2f}")

    print("\nThe KR variant stores the same architecture with Hadamard-"
          "\ncompressed inner layers and 7 protocentroids instead of 10"
          "\ncentroids; with the paper's larger (1024-512-256) architecture"
          "\nthe parameter reduction reaches 85%.")


if __name__ == "__main__":
    main()
