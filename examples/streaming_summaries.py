"""Web-scale scenario: streaming mini-batch summarization + portable output.

The paper motivates Khatri-Rao clustering with modern datasets too large for
their summaries to stay cheap.  This example pushes that to streaming scale:
data arrives in batches, a MiniBatchKhatriRaoKMeans model absorbs each batch
(Sculley-style learning-rate schedule on the Proposition 6.1 statistics),
and the final protocentroids are exported as a portable DataSummary that a
downstream consumer can load without the library's estimators.

Run:  python examples/streaming_summaries.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import DataSummary, KhatriRaoKMeans, MiniBatchKhatriRaoKMeans, summarize
from repro.datasets import make_blobs


def stream_batches(n_batches: int, batch_size: int, seed: int):
    """Simulate a data stream of blobs arriving batch by batch."""
    X, _ = make_blobs(n_batches * batch_size, n_features=8, n_clusters=25,
                      random_state=seed)
    for start in range(0, X.shape[0], batch_size):
        yield X[start : start + batch_size]


def main() -> None:
    n_batches, batch_size = 40, 250
    print(f"streaming {n_batches} batches of {batch_size} points "
          "(25 underlying clusters)\n")

    model = MiniBatchKhatriRaoKMeans((5, 5), batch_size=batch_size,
                                     random_state=0)
    for i, batch in enumerate(stream_batches(n_batches, batch_size, seed=0)):
        model.partial_fit(batch)
        if (i + 1) % 10 == 0:
            print(f"  after batch {i + 1:>3}: "
                  f"{model.n_steps_} updates absorbed")

    # Evaluate against a full-batch fit on the whole stream.
    X_all = np.vstack(list(stream_batches(n_batches, batch_size, seed=0)))
    stream_inertia = DataSummary(
        [t.copy() for t in model.protocentroids_], model.aggregator.name
    ).inertia(X_all)
    full = KhatriRaoKMeans((5, 5), n_init=5, random_state=0).fit(X_all)
    print(f"\nstreaming inertia : {stream_inertia:.1f}")
    print(f"full-batch inertia: {full.inertia_:.1f} "
          "(upper bound on what streaming can reach)")

    # Export / re-import the portable artifact.
    summary = summarize(model, metadata={"source": "stream", "batches": n_batches})
    with tempfile.TemporaryDirectory() as tmp:
        path = summary.save(Path(tmp) / "stream_summary.npz")
        loaded = DataSummary.load(path)
        print(f"\nsaved and re-loaded summary from {path.name}:")
        print(loaded.report())
        assert np.allclose(loaded.centroids(), summary.centroids())


if __name__ == "__main__":
    main()
