"""Figure 1 scenario: summarize the stickfigures dataset with 6 images.

The stickfigures dataset contains 9 pose clusters that factor exactly into
3 upper-body poses x 3 lower-body poses.  Khatri-Rao-k-Means with the sum
aggregator finds two sets of 3 protocentroid images whose pairwise sums
reproduce all 9 cluster prototypes — a 6-image summary with no accuracy
loss, where standard clustering needs 9 images.

Run:  python examples/stickfigures_summary.py
"""

from __future__ import annotations

import numpy as np

from repro import KhatriRaoKMeans, KMeans
from repro.datasets import load_dataset
from repro.metrics import unsupervised_clustering_accuracy


def render_ascii(image: np.ndarray, threshold: float = 0.35) -> str:
    """Tiny ASCII rendering of a square grayscale image."""
    side = int(np.sqrt(image.size))
    grid = image.reshape(side, side)
    return "\n".join(
        "".join("#" if value > threshold else "." for value in row)
        for row in grid
    )


def main() -> None:
    ds = load_dataset("stickfigures", random_state=0)
    print(f"stickfigures: {ds.n_samples} images, {ds.n_labels} pose clusters\n")

    kr = KhatriRaoKMeans((3, 3), aggregator="sum", n_init=20, random_state=0)
    kr.fit(ds.data)
    km = KMeans(9, n_init=20, random_state=0).fit(ds.data)

    kr_acc = unsupervised_clustering_accuracy(ds.labels, kr.labels_)
    km_acc = unsupervised_clustering_accuracy(ds.labels, km.labels_)
    print(f"Khatri-Rao (3+3 protocentroids): ACC={kr_acc:.3f}, "
          f"{kr.parameter_count()} parameters")
    print(f"k-Means (9 centroids)          : ACC={km_acc:.3f}, "
          f"{km.parameter_count()} parameters")
    print(f"compression: {kr.parameter_count() / km.parameter_count():.2f}x "
          "of the k-Means summary\n")

    for q, theta in enumerate(kr.protocentroids_):
        print(f"--- protocentroid set {q + 1} "
              f"({'upper' if q == 0 else 'lower'}-half variation) ---")
        blocks = [render_ascii(vector).splitlines() for vector in theta]
        for lines in zip(*blocks):
            print("   ".join(lines))
        print()

    print("--- one reconstructed centroid (protocentroid 0 ⊕ protocentroid 0) ---")
    print(render_ascii(kr.centroids()[0]))


if __name__ == "__main__":
    main()
