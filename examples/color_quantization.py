"""Case study (Figure 9): more succinct codebooks for color quantization.

Quantizes a photo-like RGB image with three codebooks built from the same
parameter budget of 12 stored vectors:

* 12 random pixels,
* 12 k-Means centroids,
* a Khatri-Rao-k-Means codebook — two sets of 6 proto-colors whose
  elementwise products span 36 representative colors.

Run:  python examples/color_quantization.py
"""

from __future__ import annotations

import numpy as np

from repro.applications import (
    quantize_khatri_rao_kmeans,
    quantize_kmeans,
    quantize_random,
)
from repro.datasets import make_quantization_image


def main() -> None:
    image = make_quantization_image(120, 160, random_state=0)
    print(f"image: {image.shape[0]}x{image.shape[1]} RGB, "
          f"{image.shape[0] * image.shape[1]} pixels")
    print("codebooks fitted on a 1000-pixel subsample "
          "(as in the paper's setup)\n")

    results = [
        quantize_random(image, 12, random_state=0),
        quantize_kmeans(image, 12, fit_pixels=1000, n_init=20, random_state=0),
        quantize_khatri_rao_kmeans(image, (6, 6), fit_pixels=1000, n_init=20,
                                   random_state=0),
    ]

    header = f"{'method':<24}{'colors':>8}{'stored vectors':>16}{'inertia':>12}"
    print(header)
    print("-" * len(header))
    for result in results:
        print(f"{result.method:<24}{result.codebook.shape[0]:>8}"
              f"{result.stored_vectors:>16}{result.inertia:>12.1f}")

    kr = results[-1]
    km = results[1]
    print(f"\nKhatri-Rao reduces quantization error by "
          f"{100 * (1 - kr.inertia / km.inertia):.0f}% at the same budget "
          "(paper: 2009 -> 1144 on the scikit-learn example image).")

    # Show how well the rare red accents survive quantization.
    pixels = image.reshape(-1, 3)
    red = (pixels[:, 0] > 0.6) & (pixels[:, 1] < 0.3) & (pixels[:, 2] < 0.3)
    for result in results[1:]:
        quantized = result.image.reshape(-1, 3)
        err = float(np.sum((pixels[red] - quantized[red]) ** 2))
        print(f"red-tone error under {result.method:<22}: {err:8.2f}")

    # Dump viewable images (binary PPM — open with any image viewer).
    from repro.viz import save_ppm

    save_ppm(image, "quantization_original.ppm")
    for result in results:
        save_ppm(result.image, f"quantization_{result.method.replace('-', '_')}.ppm")
    print("\nwrote quantization_*.ppm (original + one per method)")


if __name__ == "__main__":
    main()
